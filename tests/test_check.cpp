/**
 * @file
 * Self-checking simulation tests (docs/VALIDATION.md): the
 * InvariantError taxonomy entry and its exit code, every seeded
 * violation hook tripping its checker, the --check on/off bit-identity
 * contract, the architectural oracle, and a small seeded differential
 * fuzz campaign with shrink + repro-spec round-trip.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "config/cli.hpp"
#include "config/knob_registry.hpp"
#include "gpu/gpu.hpp"
#include "harness/sweep.hpp"

namespace gex {
namespace {

// --- Taxonomy --------------------------------------------------------

TEST(InvariantTaxonomy, MapsToExitCodeSeven)
{
    InvariantError e("shadow mismatch");
    EXPECT_EQ(e.kind(), "InvariantError");
    EXPECT_EQ(cli::exitCodeFor(e), cli::ExitInvariant);
    EXPECT_EQ(cli::ExitInvariant, 7);
}

TEST(InvariantTaxonomy, CheckKnobsAreExecOnly)
{
    // --check must never change results, so neither knob may enter the
    // result digest or the resolved_config manifest.
    const auto &reg = config::KnobRegistry::instance();
    const config::Knob *check = reg.find("check");
    const config::Knob *violate = reg.find("check.violate");
    ASSERT_NE(check, nullptr);
    ASSERT_NE(violate, nullptr);
    EXPECT_TRUE(check->execOnly);
    EXPECT_TRUE(violate->execOnly);

    config::RunParams off = config::RunParams::baseline();
    config::RunParams on = config::RunParams::baseline();
    on.cfg.checkInvariants = true;
    on.cfg.checkViolation = "rq-hold";
    EXPECT_EQ(reg.resultDigest(off), reg.resultDigest(on));
}

// --- Seeded violations ----------------------------------------------

harness::TraceCache &
cache()
{
    static harness::TraceCache c;
    return c;
}

/** Run bfs/demand-paging with @p violate armed; return the error. */
InvariantError
runSeededViolation(gpu::Scheme scheme, const std::string &violate,
                   bool capture)
{
    const harness::TracedWorkload &tw = cache().get("bfs");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.numSms = 4;
    cfg.scheme = scheme;
    cfg.checkInvariants = true;
    cfg.checkViolation = violate;
    cfg.watchdogCaptureEvents = capture;
    gpu::Gpu g(cfg);
    try {
        g.run(tw.kernel, tw.trace, vm::VmPolicy::demandPaging());
    } catch (const InvariantError &e) {
        return e;
    }
    return InvariantError("NOT DETECTED");
}

TEST(SeededViolations, RqHoldTripsTheReplayQueueChecker)
{
    InvariantError e = runSeededViolation(gpu::Scheme::ReplayQueue,
                                          "rq-hold", true);
    std::string r = e.report();
    EXPECT_NE(r.find("replay-queue hold violation"), std::string::npos)
        << r;
    EXPECT_EQ(e.context().scheme, "replay-queue");
    EXPECT_NE(e.context().cycle, kNoCycle);
    // Satellite contract: the report reuses the last-K event ring.
    EXPECT_NE(e.diagnostics().find("last pipeline events"),
              std::string::npos)
        << e.diagnostics();
}

TEST(SeededViolations, RqHoldWithoutCapturePointsAtTheKnob)
{
    InvariantError e = runSeededViolation(gpu::Scheme::ReplayQueue,
                                          "rq-hold", false);
    EXPECT_NE(e.report().find("replay-queue hold violation"),
              std::string::npos);
    EXPECT_NE(e.diagnostics().find("recent-event capture off"),
              std::string::npos)
        << e.diagnostics();
}

TEST(SeededViolations, OlLeakTripsTheDrainLeakChecker)
{
    InvariantError e = runSeededViolation(gpu::Scheme::OperandLog,
                                          "ol-leak", false);
    std::string r = e.report();
    EXPECT_NE(r.find("operand-log partition"), std::string::npos) << r;
    EXPECT_NE(r.find("leak"), std::string::npos) << r;
}

TEST(SeededViolations, EventSeqTripsTheEventHeapChecker)
{
    InvariantError e = runSeededViolation(gpu::Scheme::StallOnFault,
                                          "event-seq", false);
    EXPECT_NE(e.report().find("scheduled into the past"),
              std::string::npos)
        << e.report();
}

TEST(SeededViolations, DoubleCommitTripsExactlyOnceRetirement)
{
    InvariantError e = runSeededViolation(gpu::Scheme::StallOnFault,
                                          "double-commit", false);
    EXPECT_NE(e.report().find("committed twice"), std::string::npos)
        << e.report();
}

TEST(SeededViolations, UnknownHookNameIsAConfigError)
{
    const harness::TracedWorkload &tw = cache().get("bfs");
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.checkInvariants = true;
    cfg.checkViolation = "rq-holdd";
    gpu::Gpu g(cfg);
    EXPECT_THROW(g.run(tw.kernel, tw.trace, vm::VmPolicy::demandPaging()),
                 ConfigError);
}

// --- --check on/off bit-identity ------------------------------------

TEST(CheckInvariance, CheckOnLeavesEverySchemeBitIdentical)
{
    const harness::TracedWorkload &tw = cache().get("bfs");
    for (gpu::Scheme s : gpu::allSchemes()) {
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.numSms = 4;
        cfg.scheme = s;

        gpu::Gpu off(cfg);
        gpu::SimResult roff =
            off.run(tw.kernel, tw.trace, vm::VmPolicy::demandPaging());

        cfg.checkInvariants = true;
        cfg.watchdogCaptureEvents = true;
        gpu::Gpu on(cfg);
        gpu::SimResult ron =
            on.run(tw.kernel, tw.trace, vm::VmPolicy::demandPaging());

        EXPECT_EQ(roff.cycles, ron.cycles) << gpu::schemeName(s);
        EXPECT_EQ(roff.stats.toJson(), ron.stats.toJson())
            << gpu::schemeName(s);
    }
}

// --- Architectural oracle -------------------------------------------

TEST(ArchOracleContract, ReplayAndTimingPassOnAHealthyRun)
{
    const harness::TracedWorkload &tw = cache().get("sgemm");
    check::ArchOracle oracle("sgemm", 1, *tw.mem, tw.trace);
    EXPECT_NO_THROW(oracle.verifyReplay());

    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.numSms = 4;
    gpu::Gpu g(cfg);
    gpu::SimResult r = g.run(tw.kernel, tw.trace);
    EXPECT_NO_THROW(oracle.verifyTiming(r, cfg));
}

TEST(ArchOracleContract, TimingMismatchThrowsInvariantError)
{
    const harness::TracedWorkload &tw = cache().get("sgemm");
    check::ArchOracle oracle("sgemm", 1, *tw.mem, tw.trace);
    gpu::SimResult fake;
    fake.instructions = oracle.reference().dynamicInsts + 1;
    try {
        oracle.verifyTiming(fake, gpu::GpuConfig::baseline());
        FAIL() << "mismatched instruction count passed";
    } catch (const InvariantError &e) {
        EXPECT_NE(e.report().find("architectural oracle"),
                  std::string::npos)
            << e.report();
    }
}

TEST(ArchOracleContract, FingerprintsDifferAcrossWorkloads)
{
    const harness::TracedWorkload &a = cache().get("sgemm");
    const harness::TracedWorkload &b = cache().get("bfs");
    EXPECT_NE(check::fingerprint(*a.mem, a.trace),
              check::fingerprint(*b.mem, b.trace));
}

// --- Differential fuzz campaign -------------------------------------

TEST(FuzzCampaign, GenerationIsDeterministic)
{
    check::FuzzOptions opt;
    opt.seed = 7;
    check::FuzzCampaign c1(opt), c2(opt);
    for (std::uint64_t i = 0; i < 4; ++i) {
        check::FuzzCase a = c1.generate(i);
        check::FuzzCase b = c2.generate(i);
        EXPECT_EQ(a.workload, b.workload);
        EXPECT_EQ(check::FuzzCampaign::describeCase(a),
                  check::FuzzCampaign::describeCase(b));
        EXPECT_EQ(config::KnobRegistry::instance().resultDigest(a.params),
                  config::KnobRegistry::instance().resultDigest(b.params));
        EXPECT_TRUE(a.params.cfg.checkInvariants);
    }
}

TEST(FuzzCampaign, QuickDifferentialCampaignPasses)
{
    // Two seeded cases, all five schemes each, sanitizer + oracle +
    // smThreads 1-vs-4 bit-identity. Any divergence fails the test
    // with the full failure report.
    check::FuzzOptions opt;
    opt.seed = 42;
    opt.cases = 2;
    opt.smThreadsAlt = 4;
    opt.workloads = {"bfs", "spmv"};
    check::FuzzCampaign camp(opt);
    check::FuzzFailure fail;
    bool ok = camp.run(&fail);
    EXPECT_TRUE(ok) << fail.kind << ": " << fail.message;
}

TEST(FuzzCampaign, SeededFailureShrinksToAReplayableSpec)
{
    check::FuzzOptions opt;
    opt.seed = 5;
    opt.smThreadsAlt = 1; // the violation trips on the first run
    check::FuzzCampaign camp(opt);

    // A hand-built failing case with noise knobs the shrinker should
    // strip: the armed rq-hold violation only needs the scheme and a
    // fault-producing policy.
    check::FuzzCase c;
    c.workload = "bfs";
    c.scale = 1;
    c.params = config::RunParams::baseline();
    const auto &reg = config::KnobRegistry::instance();
    reg.find("policy")->set(c.params, config::KnobValue::ofEnum(
                                          "demand-paging"));
    reg.find("sms")->set(c.params, config::KnobValue::ofInt(4));
    reg.find("operand-log-kb")->set(c.params,
                                    config::KnobValue::ofInt(32));
    reg.find("l1tlb.entries")->set(c.params,
                                   config::KnobValue::ofInt(16));
    reg.find("ideal-switch")->set(c.params,
                                  config::KnobValue::ofBool(true));
    c.params.cfg.scheme = gpu::Scheme::ReplayQueue;
    c.params.cfg.checkInvariants = true;
    c.params.cfg.checkViolation = "rq-hold";

    check::FuzzFailure fail;
    ASSERT_FALSE(camp.runCase(c, &fail));
    EXPECT_EQ(fail.kind, "InvariantError");
    EXPECT_NE(fail.message.find("replay-queue hold violation"),
              std::string::npos)
        << fail.message;

    check::FuzzCase shrunk = camp.shrink(fail);
    // The noise knobs reset; the essentials survive.
    EXPECT_EQ(shrunk.params.cfg.scheme, gpu::Scheme::ReplayQueue);
    EXPECT_EQ(shrunk.params.cfg.checkViolation, "rq-hold");
    std::string desc = check::FuzzCampaign::describeCase(shrunk);
    EXPECT_EQ(desc.find("operand-log-kb"), std::string::npos) << desc;
    EXPECT_EQ(desc.find("l1tlb.entries"), std::string::npos) << desc;
    EXPECT_EQ(desc.find("ideal-switch"), std::string::npos) << desc;

    // The shrunk case still fails.
    check::FuzzFailure again;
    EXPECT_FALSE(camp.runCase(shrunk, &again));

    // The repro spec round-trips through the spec loader into params
    // that reproduce the same violation.
    std::string spec = check::FuzzCampaign::reproSpecJson(shrunk);
    EXPECT_NE(spec.find("\"check\": true"), std::string::npos) << spec;
    EXPECT_NE(spec.find("\"check.violate\": \"rq-hold\""),
              std::string::npos)
        << spec;

    check::FuzzCase replay;
    replay.scale = 1;
    replay.params = config::RunParams::baseline();
    reg.applySpecText(
        replay.params, spec, "repro.json",
        [&](const std::string &key, const json::Value &v) {
            if (key == "workload") {
                replay.workload = v.asString();
                return true;
            }
            if (key == "scale") {
                replay.scale = static_cast<int>(v.asNumber());
                return true;
            }
            return false;
        });
    EXPECT_EQ(replay.workload, "bfs");
    check::FuzzFailure replayFail;
    EXPECT_FALSE(camp.runCase(replay, &replayFail));
    EXPECT_EQ(replayFail.kind, "InvariantError");
}

} // namespace
} // namespace gex
