/**
 * @file
 * Golden end-to-end results: a grid of (workload, scheme, paging
 * policy, block switching) points with the exact cycle count,
 * instruction count and a digest over EVERY exported statistic,
 * captured before the hot-path container overhaul (flat maps, ring
 * buffers, scan gating). Performance work on the timing loop must be
 * behavior-neutral; any change to any stat on any point fails here.
 *
 * To regenerate after an *intentional* behavior change, print the new
 * table with the digest below (FNV-1a over the sorted scalars' names
 * and raw double bits) and review every moved point.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "gex.hpp"

namespace gex {
namespace {

std::uint64_t
digestStats(const gpu::SimResult &r)
{
    // FNV-1a 64-bit over each scalar's name bytes then its raw value
    // bits, in the StatSet's sorted order. Bit-exact by construction.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void *p, std::size_t n) {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    };
    for (const auto &kv : r.stats.scalars()) {
        mix(kv.first.data(), kv.first.size());
        double v = kv.second;
        mix(&v, sizeof v);
    }
    return h;
}

vm::VmPolicy
policyByName(const std::string &p)
{
    if (p == "all-resident")
        return vm::VmPolicy::allResident();
    if (p == "demand-paging")
        return vm::VmPolicy::demandPaging();
    if (p == "output-local")
        return vm::VmPolicy::outputFaults(true);
    if (p == "output-cpu")
        return vm::VmPolicy::outputFaults(false);
    if (p == "heap-local")
        return vm::VmPolicy::heapFaults(true);
    ADD_FAILURE() << "unknown policy " << p;
    return vm::VmPolicy::allResident();
}

struct GoldenPoint {
    const char *workload;
    const char *scheme;
    const char *policy;
    bool blockSwitching;
    std::uint64_t cycles;
    std::uint64_t instructions;
    std::uint64_t statsDigest;
};

// Captured at the pre-overhaul baseline (std::unordered_map /
// std::deque containers, full-width warp scans). Covers every
// exception scheme fault-free, demand paging, block switching (the
// saved-warp context path), local/CPU output faults and the GPU-local
// heap handler.
const GoldenPoint kGolden[] = {
    {"bfs", "baseline", "all-resident", false,
     15338ull, 50994ull, 0x1935f1c9fb129810ull},
    {"bfs", "wd-commit", "all-resident", false,
     15967ull, 50994ull, 0x7b993b39894332bbull},
    {"bfs", "wd-lastcheck", "all-resident", false,
     15499ull, 50994ull, 0xd5757877af1736c5ull},
    {"bfs", "replay-queue", "all-resident", false,
     15468ull, 50994ull, 0x360532fe14697848ull},
    {"bfs", "operand-log", "all-resident", false,
     15989ull, 50994ull, 0x98748b7a4f332beeull},
    {"spmv", "baseline", "all-resident", false,
     261971ull, 135892ull, 0xdcdf28d380e734e7ull},
    {"spmv", "replay-queue", "all-resident", false,
     262261ull, 135892ull, 0x4c64c8a25f6bc9bcull},
    {"spmv", "operand-log", "all-resident", false,
     264751ull, 135892ull, 0xec4ac5b7893bc2cdull},
    {"lbm", "wd-lastcheck", "all-resident", false,
     49762ull, 116736ull, 0x9da746263d97ce5eull},
    {"sgemm", "replay-queue", "all-resident", false,
     19441ull, 287232ull, 0x11e3def4164c7b8cull},
    {"bfs", "baseline", "demand-paging", false,
     155021ull, 50994ull, 0x823563883bca5143ull},
    {"bfs", "replay-queue", "demand-paging", false,
     146874ull, 50994ull, 0xe73334ce5390b7d2ull},
    {"bfs", "replay-queue", "demand-paging", true,
     146874ull, 50994ull, 0xe73334ce5390b7d2ull},
    {"spmv", "operand-log", "demand-paging", true,
     705846ull, 135892ull, 0x09cc3b7b543a7c3aull},
    {"stencil", "replay-queue", "output-local", false,
     411997ull, 176640ull, 0x3ce98445f903fd70ull},
    {"stencil", "replay-queue", "output-cpu", false,
     270677ull, 176640ull, 0xd22b5e468ee3e491ull},
    {"ha-prob", "operand-log", "heap-local", false,
     71499ull, 32064ull, 0x08650c7ab646df8eull},
    {"quad-tree", "replay-queue", "heap-local", false,
     83974ull, 21120ull, 0xc8131dbf0bfd37daull},
};

TEST(GoldenStats, EveryPointBitIdenticalToCapturedBaseline)
{
    harness::TraceCache cache; // share each workload's trace across points
    // The phased tick engine promises bit-identical results at any
    // smThreads setting, so the golden table must hold at each one.
    for (int smThreads : {1, 4, 8}) {
        for (const GoldenPoint &pt : kGolden) {
            SCOPED_TRACE(std::string(pt.workload) + "/" + pt.scheme +
                         "/" + pt.policy +
                         (pt.blockSwitching ? "/bs" : "") +
                         "/smThreads=" + std::to_string(smThreads));
            const harness::TracedWorkload &tw = cache.get(pt.workload);
            gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
            cfg.scheme = gpu::schemeFromName(pt.scheme);
            cfg.blockSwitching = pt.blockSwitching;
            cfg.smThreads = smThreads;
            gpu::Gpu g(cfg);
            gpu::SimResult r =
                g.run(tw.kernel, tw.trace, policyByName(pt.policy));
            EXPECT_EQ(static_cast<std::uint64_t>(r.cycles), pt.cycles);
            EXPECT_EQ(r.instructions, pt.instructions);
            EXPECT_EQ(digestStats(r), pt.statsDigest)
                << "a statistic changed value — the timing refactor is "
                   "no longer behavior-neutral";
        }
    }
}

} // namespace
} // namespace gex
