/**
 * @file
 * Campaign-journal tests (docs/ROBUSTNESS.md, "Resume contract"):
 * point keys and config digests, record/load round trips through the
 * atomic JSONL file, corrupt-line tolerance, digest-guarded lookups,
 * and the headline property — a campaign interrupted after a few
 * points and resumed at a different parallelism produces a final JSON
 * document byte-identical to an uninterrupted run's.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "harness/journal.hpp"
#include "harness/sweep.hpp"

namespace gex {
namespace {

std::string
tmpPath(const char *name)
{
    std::string p = ::testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

harness::RunSpec
smallSpec(const char *workload, gpu::Scheme scheme)
{
    harness::RunSpec rs;
    rs.workload = workload;
    rs.cfg = gpu::GpuConfig::baseline();
    rs.cfg.numSms = 4;
    rs.cfg.scheme = scheme;
    return rs;
}

std::vector<harness::RunSpec>
smallGrid()
{
    std::vector<harness::RunSpec> grid;
    for (const char *w : {"bfs", "spmv"})
        for (gpu::Scheme s :
             {gpu::Scheme::StallOnFault, gpu::Scheme::ReplayQueue})
            grid.push_back(smallSpec(w, s));
    // One faulting point so fault machinery goes through the journal
    // too.
    harness::RunSpec dp = smallSpec("bfs", gpu::Scheme::ReplayQueue);
    dp.policy = vm::VmPolicy::demandPaging();
    dp.series = "replay-queue-dp";
    grid.push_back(std::move(dp));
    return grid;
}

/** The deterministic report document for @p runs, as one string. */
std::string
reportJson(std::vector<harness::RunRecord> runs)
{
    harness::normalizeToSeries(runs, "baseline");
    harness::SweepReport rep;
    rep.name = "test_journal";
    rep.deterministic = true;
    rep.geomeans = harness::seriesGeomeans(runs);
    rep.runs = std::move(runs);
    std::ostringstream os;
    rep.writeJson(os);
    return os.str();
}

// --- Keys and digests ------------------------------------------------

TEST(Journal, PointKeyNamesTheGridCoordinates)
{
    harness::RunSpec rs = smallSpec("bfs", gpu::Scheme::ReplayQueue);
    rs.policy = vm::VmPolicy::demandPaging();
    std::string key = harness::pointKey(rs);
    EXPECT_NE(key.find("bfs"), std::string::npos) << key;
    EXPECT_NE(key.find("replay-queue"), std::string::npos) << key;
    EXPECT_NE(key.find(vm::policyName(rs.policy)), std::string::npos)
        << key;
}

TEST(Journal, DigestIgnoresExecutionKnobsOnly)
{
    harness::RunSpec rs = smallSpec("bfs", gpu::Scheme::ReplayQueue);
    const std::uint64_t d0 = harness::specDigest(rs);

    // Execution-environment knobs do not change results and must not
    // change the digest: a campaign resumes at any parallelism.
    harness::RunSpec par = rs;
    par.cfg.smThreads = 8;
    EXPECT_EQ(harness::specDigest(par), d0);

    // Everything result-affecting must change it.
    harness::RunSpec sms = rs;
    sms.cfg.numSms = 8;
    EXPECT_NE(harness::specDigest(sms), d0);

    harness::RunSpec rate = rs;
    rate.policy.inject.rate = 0.25;
    EXPECT_NE(harness::specDigest(rate), d0);

    // Watchdog knobs change what outcome gets *recorded* (livelock vs
    // budget vs completion), so they are part of the digest.
    harness::RunSpec wd = rs;
    wd.cfg.watchdogCycles = 1'000;
    EXPECT_NE(harness::specDigest(wd), d0);

    harness::RunSpec bud = rs;
    bud.cfg.maxCycles = 1'000;
    EXPECT_NE(harness::specDigest(bud), d0);
}

// --- Record / load round trip ---------------------------------------

TEST(Journal, RecordLoadRoundTripsResultBitExactly)
{
    std::string path = tmpPath("gex_journal_roundtrip.jsonl");

    harness::SweepEngine eng(1);
    harness::CampaignJournal j1(path);
    eng.setJournal(&j1);
    harness::RunSpec rs = smallSpec("bfs", gpu::Scheme::StallOnFault);
    eng.add(rs);
    std::vector<harness::RunRecord> runs = eng.run();
    ASSERT_EQ(runs.size(), 1u);
    ASSERT_TRUE(runs[0].ok());
    EXPECT_EQ(j1.size(), 1u);

    harness::CampaignJournal j2(path);
    EXPECT_EQ(j2.load(), 1u);
    harness::RunRecord rec;
    ASSERT_TRUE(j2.lookup(rs, &rec));
    EXPECT_EQ(rec.status, harness::PointStatus::Ok);
    EXPECT_EQ(rec.attempts, runs[0].attempts);
    EXPECT_EQ(rec.result.cycles, runs[0].result.cycles);
    EXPECT_EQ(rec.result.instructions, runs[0].result.instructions);
    const auto &want = runs[0].result.stats.scalars();
    const auto &got = rec.result.stats.scalars();
    ASSERT_EQ(got.size(), want.size());
    auto it = got.begin();
    for (const auto &kv : want) {
        EXPECT_EQ(it->first, kv.first);
        EXPECT_EQ(it->second, kv.second) << kv.first;
        ++it;
    }

    // A different config must miss: the digest guards the lookup.
    harness::RunSpec other = rs;
    other.cfg.numSms = 8;
    EXPECT_FALSE(j2.lookup(other, &rec));

    std::remove(path.c_str());
}

TEST(Journal, MalformedLinesAreSkippedNotFatal)
{
    std::string path = tmpPath("gex_journal_torn.jsonl");
    {
        harness::SweepEngine eng(1);
        harness::CampaignJournal j(path);
        eng.setJournal(&j);
        eng.add(smallSpec("bfs", gpu::Scheme::StallOnFault));
        eng.run();
    }
    // Simulate the torn write of a crash plus a corrupt byte.
    {
        std::ofstream os(path, std::ios::app);
        os << "{\"key\": \"half a li";
    }
    harness::CampaignJournal j(path);
    EXPECT_EQ(j.load(), 1u);
    harness::RunRecord rec;
    EXPECT_TRUE(
        j.lookup(smallSpec("bfs", gpu::Scheme::StallOnFault), &rec));
    std::remove(path.c_str());
}

// --- The resume contract --------------------------------------------

TEST(Journal, InterruptedCampaignResumesBitIdentical)
{
    std::vector<harness::RunSpec> grid = smallGrid();

    // The reference: one uninterrupted serial campaign.
    std::string cleanPath = tmpPath("gex_journal_clean.jsonl");
    harness::CampaignJournal clean(cleanPath);
    harness::SweepEngine ref(1);
    ref.setJournal(&clean);
    for (const auto &rs : grid)
        ref.add(rs);
    std::string want = reportJson(ref.run());

    // The "crash": a first engine journals only the first two points,
    // as if the process was killed mid-campaign.
    std::string path = tmpPath("gex_journal_resume.jsonl");
    {
        harness::CampaignJournal j(path);
        harness::SweepEngine eng(1);
        eng.setJournal(&j);
        eng.add(grid[0]);
        eng.add(grid[1]);
        eng.run();
        EXPECT_EQ(j.size(), 2u);
    }

    // The resume: fresh process state, the full grid, more worker
    // threads AND more SM-tick threads than the first attempt.
    harness::CampaignJournal j(path);
    EXPECT_EQ(j.load(), 2u);
    harness::SweepEngine eng(4);
    eng.setJournal(&j);
    for (auto rs : grid) {
        rs.cfg.smThreads = 4;
        eng.add(std::move(rs));
    }
    std::vector<harness::RunRecord> runs = eng.run();
    EXPECT_EQ(j.size(), grid.size());
    std::string got = reportJson(std::move(runs));

    EXPECT_EQ(got, want);

    std::remove(cleanPath.c_str());
    std::remove(path.c_str());
}

} // namespace
} // namespace gex
