/** @file Unit tests: SIMT reconvergence stack. */

#include <gtest/gtest.h>

#include "func/simt_stack.hpp"

namespace gex::func {
namespace {

TEST(SimtStack, ResetSingleEntry)
{
    SimtStack s;
    s.reset(kFullMask);
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(s.top().pc, 0u);
    EXPECT_EQ(s.top().mask, kFullMask);
    EXPECT_EQ(s.top().rpc, kNoRpc);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, UniformAdvance)
{
    SimtStack s;
    s.reset(kFullMask);
    EXPECT_TRUE(s.advance(1));
    EXPECT_EQ(s.top().pc, 1u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergeAndReconverge)
{
    SimtStack s;
    s.reset(0xffffffffu);
    s.pushScope(10); // SSY @10
    // Divergent branch at pc 2: taken -> 5, fall-through -> 3.
    s.diverge(5, 3, s.scopeTarget(), 0x0000ffffu, 0xffff0000u);
    // Taken side executes first.
    EXPECT_EQ(s.top().pc, 5u);
    EXPECT_EQ(s.top().mask, 0x0000ffffu);
    EXPECT_EQ(s.depth(), 3u);
    // Taken side reaches the reconvergence point.
    EXPECT_TRUE(s.advance(10));
    EXPECT_EQ(s.top().pc, 3u);
    EXPECT_EQ(s.top().mask, 0xffff0000u);
    // Fall-through side reaches it too.
    EXPECT_TRUE(s.advance(10));
    EXPECT_EQ(s.top().pc, 10u);
    EXPECT_EQ(s.top().mask, 0xffffffffu);
    EXPECT_EQ(s.depth(), 1u);
    // The SSY scope closed when the converged flow passed its label.
    EXPECT_EQ(s.scopeTarget(), kNoRpc);
}

TEST(SimtStack, BranchDirectlyToReconvergenceFolds)
{
    SimtStack s;
    s.reset(kFullMask);
    s.pushScope(8);
    // Guard-skip: taken lanes jump straight to the reconvergence pc.
    s.diverge(8, 3, s.scopeTarget(), 0x1u, ~0x1u & kFullMask);
    // Only the fall-through side was pushed.
    EXPECT_EQ(s.depth(), 2u);
    EXPECT_EQ(s.top().pc, 3u);
    EXPECT_EQ(s.top().mask, ~0x1u & kFullMask);
    EXPECT_TRUE(s.advance(8));
    EXPECT_EQ(s.top().pc, 8u);
    EXPECT_EQ(s.top().mask, kFullMask);
}

TEST(SimtStack, NestedScopes)
{
    SimtStack s;
    s.reset(kFullMask);
    s.pushScope(20);               // outer SSY @20
    s.diverge(5, 3, 20, 0xffffu, 0xffff0000u);
    EXPECT_EQ(s.top().pc, 5u);
    s.pushScope(10);               // inner SSY @10 on the taken path
    EXPECT_EQ(s.scopeTarget(), 10u);
    s.diverge(7, 6, 10, 0xffu, 0xff00u);
    EXPECT_EQ(s.top().mask, 0xffu);
    EXPECT_TRUE(s.advance(10));    // inner taken reconverges
    EXPECT_EQ(s.top().mask, 0xff00u);
    EXPECT_TRUE(s.advance(10));    // inner fall reconverges
    EXPECT_EQ(s.top().mask, 0xffffu);
    EXPECT_EQ(s.scopeTarget(), 20u); // inner scope closed
    EXPECT_TRUE(s.advance(20));    // outer taken side done
    EXPECT_EQ(s.top().mask, 0xffff0000u);
    EXPECT_TRUE(s.advance(20));
    EXPECT_EQ(s.top().mask, kFullMask);
    EXPECT_EQ(s.scopeTarget(), kNoRpc);
}

TEST(SimtStack, LoopWithProgressiveExit)
{
    // while-style loop at pcs [1..4], exit label 5; lanes exit over
    // two iterations.
    SimtStack s;
    s.reset(0xfu);
    s.pushScope(5);
    s.advance(1);
    // Iteration 1: lane 0 exits (takes branch to 5 == rpc).
    s.diverge(5, 2, 5, 0x1u, 0xeu);
    EXPECT_EQ(s.top().pc, 2u);
    EXPECT_EQ(s.top().mask, 0xeu);
    s.advance(3);
    s.advance(1); // back edge
    // Iteration 2: remaining lanes exit together (uniform).
    EXPECT_TRUE(s.advance(5));
    EXPECT_EQ(s.top().pc, 5u);
    EXPECT_EQ(s.top().mask, 0xfu);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, RemoveLanesErasesEmptyEntries)
{
    SimtStack s;
    s.reset(0xffu);
    s.pushScope(9);
    s.diverge(4, 2, 9, 0x0fu, 0xf0u);
    EXPECT_EQ(s.depth(), 3u);
    s.removeLanes(0x0fu); // all taken-side lanes exit
    EXPECT_EQ(s.depth(), 2u);
    EXPECT_EQ(s.top().mask, 0xf0u);
    s.removeLanes(0xf0u);
    EXPECT_TRUE(s.empty());
}

TEST(SimtStack, AdvanceReturnsFalseWhenEmptiedByRemoval)
{
    SimtStack s;
    s.reset(0x1u);
    s.removeLanes(0x1u);
    EXPECT_TRUE(s.empty());
}

} // namespace
} // namespace gex::func
