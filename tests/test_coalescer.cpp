/** @file Unit tests: memory access coalescing (paper Figure 5). */

#include <gtest/gtest.h>

#include "sm/coalescer.hpp"

namespace gex::sm {
namespace {

TEST(Coalescer, EmptyInput)
{
    EXPECT_TRUE(coalesce({}).empty());
}

TEST(Coalescer, FullyCoalescedWarp)
{
    // 32 consecutive 8 B accesses => 2 lines of 128 B.
    std::vector<Addr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(0x1000 + static_cast<Addr>(lane) * 8);
    auto lines = coalesce(addrs);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x1080u);
}

TEST(Coalescer, BroadcastSingleLine)
{
    std::vector<Addr> addrs(32, 0x2008);
    auto lines = coalesce(addrs);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x2000u);
}

TEST(Coalescer, FullyScattered)
{
    std::vector<Addr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(static_cast<Addr>(lane) * 4096);
    EXPECT_EQ(coalesce(addrs).size(), 32u);
}

TEST(Coalescer, UnalignedStraddle)
{
    // Accesses within one line plus one just past the boundary.
    std::vector<Addr> addrs = {120, 127, 128};
    auto lines = coalesce(addrs);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0u);
    EXPECT_EQ(lines[1], 128u);
}

TEST(Coalescer, ResultSortedUnique)
{
    std::vector<Addr> addrs = {512, 0, 256, 0, 512, 256};
    auto lines = coalesce(addrs);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], 0u);
    EXPECT_EQ(lines[1], 256u);
    EXPECT_EQ(lines[2], 512u);
}

TEST(Coalescer, CountMatchesCoalesce)
{
    std::vector<Addr> addrs = {0, 8, 128, 4096};
    EXPECT_EQ(coalescedCount(addrs), coalesce(addrs).size());
}

} // namespace
} // namespace gex::sm
