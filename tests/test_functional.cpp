/** @file Unit + integration tests: functional simulator semantics. */

#include <gtest/gtest.h>
#include "common/error.hpp"

#include <bit>
#include <cmath>
#include <set>

#include "func/functional_sim.hpp"
#include "kasm/builder.hpp"

namespace gex::func {
namespace {

using kasm::Cmp;
using kasm::KernelBuilder;
using kasm::PLogic;
using kasm::SpecialReg;

constexpr Addr kIn = 1 << 20;
constexpr Addr kOut = 2 << 20;

/** Run a single-block kernel and return its trace. */
trace::KernelTrace
run1(GlobalMemory &mem, isa::Program prog, std::uint32_t threads,
     std::vector<std::uint64_t> params = {},
     std::uint32_t blocks = 1)
{
    Kernel k;
    k.program = std::move(prog);
    k.grid = {blocks, 1, 1};
    k.block = {threads, 1, 1};
    k.params = std::move(params);
    FunctionalSim fsim(mem);
    return fsim.run(k);
}

TEST(Functional, VectorIncrement)
{
    GlobalMemory mem;
    for (int i = 0; i < 64; ++i)
        mem.write64(kIn + 8 * static_cast<Addr>(i),
                    static_cast<std::uint64_t>(i));
    KernelBuilder b("vecinc");
    b.setNumParams(2);
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.ldparam(2, 1);
    b.shli(3, 0, 3);
    b.iadd(4, 3, 1);
    b.ldGlobal(5, 4);
    b.iaddi(5, 5, 1);
    b.iadd(4, 3, 2);
    b.stGlobal(4, 0, 5);
    b.exit();
    run1(mem, b.build(), 64, {kIn, kOut}, 2);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(mem.read64(kOut + 8 * static_cast<Addr>(i)),
                  static_cast<std::uint64_t>(i) + 1)
            << "element " << i;
}

TEST(Functional, SpecialRegisters)
{
    GlobalMemory mem;
    KernelBuilder b("sregs");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::GlobalTid);
    b.shli(2, 0, 5); // 4 values x 8 bytes per thread
    b.iadd(2, 2, 1);
    b.s2r(3, SpecialReg::TidX);
    b.stGlobal(2, 0, 3);
    b.s2r(3, SpecialReg::CtaIdX);
    b.stGlobal(2, 8, 3);
    b.s2r(3, SpecialReg::LaneId);
    b.stGlobal(2, 16, 3);
    b.s2r(3, SpecialReg::WarpId);
    b.stGlobal(2, 24, 3);
    b.exit();
    run1(mem, b.build(), 64, {kOut}, 2);
    // Thread 70 = block 1, tid 6, warp 0, lane 6.
    Addr base = kOut + 70 * 32;
    EXPECT_EQ(mem.read64(base + 0), 6u);
    EXPECT_EQ(mem.read64(base + 8), 1u);
    EXPECT_EQ(mem.read64(base + 16), 6u);
    EXPECT_EQ(mem.read64(base + 24), 0u);
    // Thread 33 of block 0: warp 1, lane 1.
    base = kOut + 33 * 32;
    EXPECT_EQ(mem.read64(base + 16), 1u);
    EXPECT_EQ(mem.read64(base + 24), 1u);
}

TEST(Functional, FloatOpsMatchHost)
{
    GlobalMemory mem;
    mem.writeF64(kIn, 2.25);
    mem.writeF64(kIn + 8, -0.5);
    KernelBuilder b("fops");
    b.setNumParams(2);
    b.ldparam(0, 0);
    b.ldparam(1, 1);
    b.ldGlobal(2, 0);
    b.ldGlobal(3, 0, 8);
    b.ffma(4, 2, 3, 2);     // 2.25*-0.5 + 2.25
    b.fsqrt(5, 2);
    b.fsin(6, 3);
    b.fdiv(7, 2, 3);
    b.stGlobal(1, 0, 4);
    b.stGlobal(1, 8, 5);
    b.stGlobal(1, 16, 6);
    b.stGlobal(1, 24, 7);
    b.exit();
    run1(mem, b.build(), 1, {kIn, kOut});
    EXPECT_DOUBLE_EQ(mem.readF64(kOut), std::fma(2.25, -0.5, 2.25));
    EXPECT_DOUBLE_EQ(mem.readF64(kOut + 8), std::sqrt(2.25));
    EXPECT_DOUBLE_EQ(mem.readF64(kOut + 16), std::sin(-0.5));
    EXPECT_DOUBLE_EQ(mem.readF64(kOut + 24), 2.25 / -0.5);
}

TEST(Functional, DivergentBranchBothSidesExecute)
{
    GlobalMemory mem;
    KernelBuilder b("div");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.shli(2, 0, 3);
    b.iadd(2, 2, 1);
    b.setpi(0, Cmp::LT, 0, 16);
    auto merge = b.label();
    auto els = b.label();
    b.ssy(merge);
    b.guard(0, true);
    b.bra(els);
    b.clearGuard();
    b.movi(3, 111); // lanes 0..15
    b.bra(merge);
    b.bind(els);
    b.movi(3, 222); // lanes 16..31
    b.bind(merge);
    b.join();
    b.stGlobal(2, 0, 3);
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    for (int lane = 0; lane < 32; ++lane)
        EXPECT_EQ(mem.read64(kOut + 8 * static_cast<Addr>(lane)),
                  lane < 16 ? 111u : 222u)
            << "lane " << lane;
}

TEST(Functional, DivergentLoopTripCounts)
{
    // Each lane loops laneid+1 times accumulating its lane id.
    GlobalMemory mem;
    KernelBuilder b("dloop");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.movi(2, 0); // acc
    b.movi(3, 0); // i
    auto done = b.label();
    auto loop = b.label();
    b.ssy(done);
    b.bind(loop);
    b.setp(0, Cmp::GT, 3, 0); // i > laneid ?
    b.guard(0);
    b.bra(done);
    b.clearGuard();
    b.iadd(2, 2, 0);
    b.iaddi(3, 3, 1);
    b.bra(loop);
    b.bind(done);
    b.join();
    b.shli(4, 0, 3);
    b.iadd(4, 4, 1);
    b.stGlobal(4, 0, 2);
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    for (std::uint64_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(mem.read64(kOut + 8 * lane), lane * (lane + 1))
            << "lane " << lane;
}

TEST(Functional, SharedMemoryAndBarrier)
{
    // Cross-warp reversal through shared memory: thread i writes
    // s[i], reads s[N-1-i] after a barrier.
    GlobalMemory mem;
    KernelBuilder b("rev");
    b.setNumParams(1);
    b.setSharedBytes(64 * 8);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::TidX);
    b.shli(2, 0, 3);
    b.stShared(2, 0, 0);
    b.bar();
    b.movi(3, 63);
    b.isub(3, 3, 0);
    b.shli(3, 3, 3);
    b.ldShared(4, 3);
    b.shli(5, 0, 3);
    b.iadd(5, 5, 1);
    b.stGlobal(5, 0, 4);
    b.exit();
    run1(mem, b.build(), 64, {kOut});
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(mem.read64(kOut + 8 * i), 63 - i);
}

TEST(Functional, AtomicsAccumulateAcrossBlocks)
{
    GlobalMemory mem;
    KernelBuilder b("atom");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.movi(2, 1);
    b.atomAdd(isa::kRegZero, 1, 2);
    b.exit();
    run1(mem, b.build(), 64, {kOut}, 4);
    EXPECT_EQ(mem.read64(kOut), 4u * 64u);
}

TEST(Functional, AtomicCasAndExch)
{
    GlobalMemory mem;
    mem.write64(kOut, 7);
    KernelBuilder b("cas");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.movi(2, 7);
    b.movi(3, 9);
    b.atomCas(4, 1, 2, 3);      // 7 -> 9, returns 7
    b.stGlobal(1, 8, 4);
    b.movi(5, 42);
    b.atomExch(6, 1, 5);        // 9 -> 42, returns 9
    b.stGlobal(1, 16, 6);
    b.exit();
    run1(mem, b.build(), 1, {kOut});
    EXPECT_EQ(mem.read64(kOut), 42u);
    EXPECT_EQ(mem.read64(kOut + 8), 7u);
    EXPECT_EQ(mem.read64(kOut + 16), 9u);
}

TEST(Functional, AllocReturnsDistinctChunks)
{
    GlobalMemory mem;
    mem.setHeap(8 << 20, 1 << 20);
    KernelBuilder b("alloc");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.movi(2, 64);
    b.alloc(3, 2);
    b.stGlobal(3, 0, 0);  // touch the chunk
    b.s2r(0, SpecialReg::GlobalTid);
    b.shli(4, 0, 3);
    b.iadd(4, 4, 1);
    b.stGlobal(4, 0, 3);  // publish pointer
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    std::set<std::uint64_t> ptrs;
    for (std::uint64_t i = 0; i < 32; ++i) {
        std::uint64_t p = mem.read64(kOut + 8 * i);
        EXPECT_GE(p, (8u << 20) + 16u);
        EXPECT_EQ(p % 16, 0u);
        ptrs.insert(p);
    }
    EXPECT_EQ(ptrs.size(), 32u); // all distinct
}

TEST(Functional, PredicatedExecutionNoBranch)
{
    GlobalMemory mem;
    KernelBuilder b("pred");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.shli(2, 0, 3);
    b.iadd(2, 2, 1);
    b.movi(3, 5);
    b.setpi(0, Cmp::EQ, 0, 3); // lane 3 only
    b.guard(0);
    b.movi(3, 99);
    b.clearGuard();
    b.stGlobal(2, 0, 3);
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    for (std::uint64_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(mem.read64(kOut + 8 * lane), lane == 3 ? 99u : 5u);
}

TEST(Functional, SelAndPsetp)
{
    GlobalMemory mem;
    KernelBuilder b("sel");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.setpi(0, Cmp::GE, 0, 8);
    b.setpi(1, Cmp::LT, 0, 24);
    b.psetp(2, PLogic::And, 0, 1); // 8 <= lane < 24
    b.movi(3, 1);
    b.movi(4, 0);
    b.sel(5, 3, 4, 2);
    b.shli(6, 0, 3);
    b.iadd(6, 6, 1);
    b.stGlobal(6, 0, 5);
    b.exit();
    run1(mem, b.build(), 32, {kOut});
    for (std::uint64_t lane = 0; lane < 32; ++lane)
        EXPECT_EQ(mem.read64(kOut + 8 * lane),
                  (lane >= 8 && lane < 24) ? 1u : 0u);
}

TEST(Functional, TraceRecordsCoalescedLines)
{
    GlobalMemory mem;
    KernelBuilder b("coal");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::LaneId);
    b.shli(2, 0, 3); // consecutive 8B: 32 lanes -> 2 lines
    b.iadd(2, 2, 1);
    b.ldGlobal(3, 2);
    b.shli(2, 0, 7); // 128B stride: 32 lanes -> 32 lines
    b.iadd(2, 2, 1);
    b.ldGlobal(3, 2);
    b.exit();
    trace::KernelTrace kt = run1(mem, b.build(), 32, {kIn});
    const trace::WarpTrace &w = kt.blocks[0].warps[0];
    std::vector<int> lines;
    for (const auto &ti : w.insts)
        if (ti.numLines > 0)
            lines.push_back(ti.numLines);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 2);
    EXPECT_EQ(lines[1], 32);
}

TEST(Functional, PartialLastWarpMask)
{
    GlobalMemory mem;
    KernelBuilder b("partial");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::GlobalTid);
    b.shli(2, 0, 3);
    b.iadd(2, 2, 1);
    b.stGlobal(2, 0, 0);
    b.exit();
    trace::KernelTrace kt = run1(mem, b.build(), 40, {kOut});
    ASSERT_EQ(kt.blocks[0].warps.size(), 2u);
    // Second warp has only 8 live lanes.
    for (const auto &ti : kt.blocks[0].warps[1].insts)
        EXPECT_EQ(ti.active & ~0xffu, 0u);
    EXPECT_EQ(mem.read64(kOut + 39 * 8), 39u);
}

TEST(Functional, DeadlockDetectionOnDivergentBarrier)
{
    GlobalMemory mem;
    KernelBuilder b("dbar");
    b.s2r(0, SpecialReg::LaneId);
    b.setpi(0, Cmp::LT, 0, 16);
    auto merge = b.label();
    b.ssy(merge);
    b.guard(0, true);
    b.bra(merge);
    b.clearGuard();
    b.bar(); // divergent barrier: illegal
    b.bind(merge);
    b.join();
    b.exit();
    Kernel k;
    k.program = b.build();
    k.grid = {1, 1, 1};
    k.block = {32, 1, 1};
    FunctionalSim fsim(mem);
    EXPECT_THROW(fsim.run(k), TraceError);
}

TEST(Functional, DynamicInstCountsConsistent)
{
    GlobalMemory mem;
    KernelBuilder b("count");
    b.setNumParams(1);
    b.ldparam(1, 0);
    b.s2r(0, SpecialReg::GlobalTid);
    b.shli(2, 0, 3);
    b.iadd(2, 2, 1);
    b.ldGlobal(3, 2);
    b.stGlobal(2, 0, 3);
    b.exit();
    trace::KernelTrace kt = run1(mem, b.build(), 64, {kIn}, 3);
    // 7 instructions x 2 warps x 3 blocks.
    EXPECT_EQ(kt.dynamicInsts(), 7u * 2u * 3u);
    EXPECT_EQ(kt.memInsts, 2u * 2u * 3u);
}

} // namespace
} // namespace gex::func
