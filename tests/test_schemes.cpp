/**
 * @file
 * Integration tests: the five exception schemes on fault-free runs —
 * the cycle-count orderings the paper's design analysis predicts
 * (section 3), including the Figure 4/6/7 pipeline relationships.
 */

#include <gtest/gtest.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"

namespace gex {
namespace {

using kasm::KernelBuilder;
using kasm::SpecialReg;

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/**
 * A memory-intense, low-occupancy kernel in the spirit of the paper's
 * running example: loads through a stepped address register (WAR
 * chain) with little TLP — the case that separates the schemes.
 */
void
buildMemChain(Built &bt, int loads = 16, std::uint32_t blocks = 4)
{
    constexpr Addr in = 1 << 20;
    for (int i = 0; i < 65536; ++i)
        bt.mem.write64(in + 8 * static_cast<Addr>(i), 1);
    KernelBuilder b("memchain");
    b.setNumParams(1);
    b.setMinRegs(128); // low occupancy: 8 warps per SM
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.shli(2, 0, 3);
    b.iadd(1, 1, 2);
    for (int i = 0; i < loads; ++i) {
        b.ldGlobal(static_cast<kasm::Reg>(3 + i), 1);
        b.iaddi(1, 1, 4096); // WAR on the load's address register
    }
    b.movi(20, 0);
    for (int i = 0; i < loads; ++i)
        b.fadd(20, 20, static_cast<kasm::Reg>(3 + i));
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {blocks, 1, 1};
    bt.kernel.block = {256, 1, 1};
    bt.kernel.params = {in};
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);
}

Cycle
cyclesUnder(const Built &bt, gpu::Scheme s, std::uint32_t log_kb = 16)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = s;
    cfg.operandLogBytes = log_kb * 1024;
    gpu::Gpu g(cfg);
    auto r = g.run(bt.kernel, bt.trace);
    EXPECT_EQ(r.instructions, bt.trace.dynamicInsts());
    return r.cycles;
}

class SchemeOrdering : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        built_ = new Built;
        buildMemChain(*built_);
        base_ = cyclesUnder(*built_, gpu::Scheme::StallOnFault);
        wdc_ = cyclesUnder(*built_, gpu::Scheme::WarpDisableCommit);
        wdl_ = cyclesUnder(*built_, gpu::Scheme::WarpDisableLastCheck);
        rq_ = cyclesUnder(*built_, gpu::Scheme::ReplayQueue);
        ol_ = cyclesUnder(*built_, gpu::Scheme::OperandLog);
    }
    static void
    TearDownTestSuite()
    {
        delete built_;
        built_ = nullptr;
    }

    static Built *built_;
    static Cycle base_, wdc_, wdl_, rq_, ol_;
};

Built *SchemeOrdering::built_ = nullptr;
Cycle SchemeOrdering::base_, SchemeOrdering::wdc_, SchemeOrdering::wdl_,
    SchemeOrdering::rq_, SchemeOrdering::ol_;

TEST_F(SchemeOrdering, WdCommitIsTheSlowest)
{
    EXPECT_GT(wdc_, base_);
    EXPECT_GE(wdc_, wdl_);
    EXPECT_GE(wdc_, rq_);
    EXPECT_GE(wdc_, ol_);
}

TEST_F(SchemeOrdering, LastCheckRecoversOverCommit)
{
    // Paper section 3.1: re-enabling at the last TLB check recovers a
    // significant fraction of the wd-commit loss.
    EXPECT_LT(wdl_, wdc_);
}

TEST_F(SchemeOrdering, ReplayQueueBeatsWarpDisable)
{
    EXPECT_LE(rq_, wdl_);
}

TEST_F(SchemeOrdering, OperandLogApproachesBaseline)
{
    // Paper section 3.3: with a sufficiently large log, OL preserves
    // the baseline pipeline's performance.
    double ratio = static_cast<double>(base_) / static_cast<double>(ol_);
    EXPECT_GT(ratio, 0.97);
}

TEST_F(SchemeOrdering, ReplayQueuePaysForWarChains)
{
    // The WAR-heavy chain makes RQ measurably slower than baseline.
    EXPECT_GT(rq_, base_);
}

TEST(SchemeLog, TinyLogThrottlesOperandLogScheme)
{
    Built bt;
    buildMemChain(bt, 16, 4);
    Cycle big = cyclesUnder(bt, gpu::Scheme::OperandLog, 32);
    Cycle tiny = cyclesUnder(bt, gpu::Scheme::OperandLog, 2);
    EXPECT_GT(tiny, big);
}

TEST(SchemeLog, LogSizeMonotone)
{
    Built bt;
    buildMemChain(bt, 16, 4);
    Cycle c2 = cyclesUnder(bt, gpu::Scheme::OperandLog, 2);
    Cycle c8 = cyclesUnder(bt, gpu::Scheme::OperandLog, 8);
    Cycle c32 = cyclesUnder(bt, gpu::Scheme::OperandLog, 32);
    EXPECT_GE(c2, c8);
    EXPECT_GE(c8, c32);
}

TEST(SchemeTlp, HighOccupancyHidesSchemeCosts)
{
    // Paper section 5.2: benchmarks with high TLP show little
    // difference between schemes. Use a high-occupancy variant.
    constexpr Addr in = 1 << 20;
    Built bt;
    for (int i = 0; i < 65536; ++i)
        bt.mem.write64(in + 8 * static_cast<Addr>(i), 1);
    KernelBuilder b("tlp");
    b.setNumParams(1);
    b.s2r(0, SpecialReg::GlobalTid);
    b.ldparam(1, 0);
    b.andi(2, 0, 4095);
    b.shli(2, 2, 3);
    b.iadd(1, 1, 2);
    for (int i = 0; i < 4; ++i) {
        b.ldGlobal(3, 1, i * 64);
        b.iadd(4, 4, 3);
    }
    b.exit();
    bt.kernel.program = b.build();
    bt.kernel.grid = {64, 1, 1};
    bt.kernel.block = {256, 1, 1}; // low regs -> high occupancy
    bt.kernel.params = {in};
    func::FunctionalSim fsim(bt.mem);
    bt.trace = fsim.run(bt.kernel);

    Cycle base = cyclesUnder(bt, gpu::Scheme::StallOnFault);
    Cycle rq = cyclesUnder(bt, gpu::Scheme::ReplayQueue);
    double ratio = static_cast<double>(base) / static_cast<double>(rq);
    EXPECT_GT(ratio, 0.90);
}

} // namespace
} // namespace gex
