/**
 * @file
 * fault_storm: stress the three aggressive exception schemes under
 * Markov fault storms (inject::ModelKind::Burst) of rising intensity,
 * the regime the paper's section 3 structures are sized against. For
 * each (workload, storm level) the bench reports every scheme's
 * slowdown versus its own fault-free run, plus the structure-pressure
 * stats the storm produces: replay-queue high-water mark and
 * operand-log back-pressure cycles.
 *
 *   fault_storm [--quick] [--jobs N] [--json BENCH_fault_storm.json]
 *
 * Deterministic: the storm pattern is a pure function of the built-in
 * campaign seed (see src/inject/rng.hpp), so results are bit-identical
 * at any --jobs count.
 */

#include "bench_util.hpp"

using namespace gex;

namespace {

struct StormLevel {
    const char *label;
    double burstEnter; ///< P(calm -> storm) per walk
};

// Rising storm frequency at fixed in-storm rate: the storms get more
// frequent, not individually worse, which is the paper's migration-
// burst shape (many faults clustered in short windows).
const StormLevel kLevels[] = {
    {"calm", 0.0005},
    {"gusty", 0.002},
    {"stormy", 0.008},
};

} // namespace

static int
toolMain(int argc, char **argv)
{
    bool quick = false;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            rest.push_back(argv[i]);
    }
    bench::SweepOptions opt = bench::parseSweepArgs(
        static_cast<int>(rest.size()), rest.data(), "fault_storm");

    const std::vector<std::string> workloads =
        quick ? std::vector<std::string>{"sgemm"}
              : std::vector<std::string>{"sgemm", "spmv", "stencil"};
    const std::vector<gpu::Scheme> schemes = {
        gpu::Scheme::WarpDisableLastCheck,
        gpu::Scheme::ReplayQueue,
        gpu::Scheme::OperandLog,
    };
    const std::size_t nLevels =
        quick ? 1 : std::size(kLevels);

    gpu::GpuConfig base = gpu::GpuConfig::baseline();
    base.resilienceStats = true;
    if (quick)
        base.numSms = 4;

    harness::SweepEngine eng(opt.jobs);
    for (const auto &w : workloads) {
        for (gpu::Scheme s : schemes) {
            harness::RunSpec ref;
            ref.workload = w;
            ref.cfg = base;
            ref.cfg.scheme = s;
            ref.group = w + "/" + gpu::schemeName(s);
            ref.series = "ref";
            eng.add(std::move(ref));
            for (std::size_t l = 0; l < nLevels; ++l) {
                harness::RunSpec rs;
                rs.workload = w;
                rs.cfg = base;
                rs.cfg.scheme = s;
                rs.policy.inject.model = inject::ModelKind::Burst;
                rs.policy.inject.rate = 0.0005;
                rs.policy.inject.burstEnter = kLevels[l].burstEnter;
                rs.group = w + "/" + gpu::schemeName(s);
                rs.series = kLevels[l].label;
                eng.add(std::move(rs));
            }
        }
    }

    std::printf("fault_storm: %zu runs, %d jobs\n", eng.size(),
                eng.jobs());
    std::vector<harness::RunRecord> runs =
        bench::runAndReport(eng, opt, "fault_storm", {"ref"});

    std::printf("%-10s %-14s %-8s %9s %9s %11s %13s\n", "benchmark",
                "scheme", "storm", "slowdown", "injected", "replayq-hwm",
                "log-bp-cycles");
    for (const harness::RunRecord &r : runs) {
        if (r.spec.seriesLabel() == "ref")
            continue;
        const double norm = r.derived.count("normalized")
                                ? r.derived.at("normalized")
                                : 0.0;
        std::printf("%-10s %-14s %-8s %9.3f %9.0f %11.0f %13.0f\n",
                    r.spec.workload.c_str(),
                    gpu::schemeName(r.spec.cfg.scheme),
                    r.spec.seriesLabel().c_str(),
                    norm > 0.0 ? 1.0 / norm : 0.0,
                    r.result.stats.get("mmu.injected_faults"),
                    r.result.stats.get("resil.replayq_hwm"),
                    r.result.stats.get("resil.log_backpressure_cycles"));
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return cli::run("fault_storm", [&] { return toolMain(argc, argv); });
}
