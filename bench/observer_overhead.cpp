/**
 * @file
 * Microbenchmark: cost of the pipeline observer layer. Three
 * configurations of the same small timing run — no observer (the
 * default null-check-only path), a counting observer (the virtual-call
 * floor), and the Chrome-trace writer (event construction + storage).
 * The first must be indistinguishable from the pre-observer simulator;
 * the gap between the others is the price of tracing when it is on.
 */

#include <benchmark/benchmark.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observer.hpp"

using namespace gex;

namespace {

struct Built {
    func::GlobalMemory mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

/** A small but real run: 8 blocks of a load/compute/store kernel. */
const Built &
built()
{
    static Built *bt = [] {
        auto *b = new Built;
        kasm::KernelBuilder kb("obsbench");
        kb.setNumParams(2);
        kb.s2r(0, isa::SpecialReg::GlobalTid);
        kb.ldparam(1, 0);
        kb.ldparam(2, 1);
        kb.shli(3, 0, 3);
        kb.iadd(1, 1, 3);
        kb.iadd(2, 2, 3);
        kb.ldGlobal(4, 1);
        kb.faddi(4, 4, 1.0);
        kb.stGlobal(2, 0, 4);
        kb.exit();
        b->kernel.program = kb.build();
        b->kernel.grid = {8, 1, 1};
        b->kernel.block = {256, 1, 1};
        constexpr Addr in = 1 << 20, out = 2 << 20;
        b->kernel.params = {in, out};
        for (std::uint64_t i = 0; i < 8 * 256; ++i)
            b->mem.writeF64(in + i * 8, 1.0);
        func::FunctionalSim fsim(b->mem);
        b->trace = fsim.run(b->kernel);
        return b;
    }();
    return *bt;
}

class CountingObserver : public obs::PipelineObserver
{
  public:
    void
    event(const obs::PipeEvent &e) override
    {
        count_ += 1 + static_cast<std::uint64_t>(e.kind);
    }

    std::uint64_t count_ = 0;
};

Cycle
runOnce(obs::PipelineObserver *o)
{
    const Built &bt = built();
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    gpu::Gpu g(cfg);
    if (o)
        g.setObserver(o);
    return g.run(bt.kernel, bt.trace).cycles;
}

} // namespace

static void
BM_TimingRunNoObserver(benchmark::State &state)
{
    built();
    for (auto _ : state)
        benchmark::DoNotOptimize(runOnce(nullptr));
}
BENCHMARK(BM_TimingRunNoObserver);

static void
BM_TimingRunCountingObserver(benchmark::State &state)
{
    built();
    for (auto _ : state) {
        CountingObserver counter;
        benchmark::DoNotOptimize(runOnce(&counter));
        benchmark::DoNotOptimize(counter.count_);
    }
}
BENCHMARK(BM_TimingRunCountingObserver);

static void
BM_TimingRunChromeTrace(benchmark::State &state)
{
    built();
    for (auto _ : state) {
        obs::ChromeTraceWriter writer;
        benchmark::DoNotOptimize(runOnce(&writer));
        benchmark::DoNotOptimize(writer.eventCount());
    }
}
BENCHMARK(BM_TimingRunChromeTrace);

BENCHMARK_MAIN();
