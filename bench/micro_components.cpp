/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrates: how
 * fast the building blocks themselves run (host-side performance of
 * the simulator, not simulated GPU performance).
 */

#include <benchmark/benchmark.h>

#include "func/functional_sim.hpp"
#include "gpu/gpu.hpp"
#include "kasm/builder.hpp"
#include "kasm/parser.hpp"
#include "mem/cache.hpp"
#include "sm/coalescer.hpp"
#include "vm/tlb.hpp"
#include "workloads/workloads.hpp"

using namespace gex;

static void
BM_CacheLoadHit(benchmark::State &state)
{
    mem::Cache c(mem::CacheConfig{"c", 32 * 1024, 4, 40, 32, 1});
    auto fetch = [](Addr, Cycle t) { return t + 300; };
    c.load(0, 0, fetch);
    Cycle now = 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.load(0, now, fetch));
        now += 2;
    }
}
BENCHMARK(BM_CacheLoadHit);

static void
BM_CacheLoadMissStream(benchmark::State &state)
{
    mem::Cache c(mem::CacheConfig{"c", 32 * 1024, 4, 40, 32, 1});
    auto fetch = [](Addr, Cycle t) { return t + 300; };
    Cycle now = 0;
    Addr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.load(line, now, fetch));
        line += kLineSize;
        now += 2;
    }
}
BENCHMARK(BM_CacheLoadMissStream);

static void
BM_TlbTranslateHit(benchmark::State &state)
{
    vm::Tlb tlb(vm::TlbConfig{"t", 32, 8, 1, 32});
    auto lower = [](Addr, Cycle t) {
        vm::Translation tr;
        tr.ready = t + 70;
        return tr;
    };
    tlb.translate(1, 0, lower);
    Cycle now = 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.translate(1, now, lower));
        now += 2;
    }
}
BENCHMARK(BM_TlbTranslateHit);

static void
BM_Coalesce(benchmark::State &state)
{
    std::vector<Addr> addrs;
    Rng rng(1);
    for (int i = 0; i < 32; ++i)
        addrs.push_back(rng.below(1 << 20));
    for (auto _ : state)
        benchmark::DoNotOptimize(sm::coalesce(addrs));
}
BENCHMARK(BM_Coalesce);

static void
BM_Assemble(benchmark::State &state)
{
    const char *src = R"(
.kernel k
.params 1
    s2r r0, %gtid
    ldparam r1, param[0]
    shl r2, r0, 3
    iadd r2, r2, r1
    ld.global r3, [r2]
    iadd r3, r3, 1
    st.global [r2], r3
    exit
)";
    for (auto _ : state)
        benchmark::DoNotOptimize(kasm::assemble(src));
}
BENCHMARK(BM_Assemble);

static void
BM_FunctionalSimThroughput(benchmark::State &state)
{
    // Warp instructions per second through the functional simulator.
    std::uint64_t insts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        func::GlobalMemory mem;
        auto w = workloads::make("sad", mem, 1);
        func::FunctionalSim fsim(mem);
        state.ResumeTiming();
        trace::KernelTrace tr = fsim.run(w.kernel);
        insts += tr.dynamicInsts();
    }
    state.counters["warp_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimThroughput)->Unit(benchmark::kMillisecond);

static void
BM_TimingSimThroughput(benchmark::State &state)
{
    func::GlobalMemory mem;
    auto w = workloads::make("sad", mem, 1);
    func::FunctionalSim fsim(mem);
    trace::KernelTrace tr = fsim.run(w.kernel);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        gpu::Gpu g(gpu::GpuConfig::baseline());
        auto r = g.run(w.kernel, tr);
        insts += r.instructions;
    }
    state.counters["warp_insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimingSimThroughput)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
