/**
 * @file
 * Figure 12 reproduction (use case 1): speedup from context switching
 * faulted thread blocks during on-demand page migrations, over a
 * demand-paging system that keeps faulted blocks resident. NVLink and
 * PCIe interconnects, with normal and ideal (1-cycle) context
 * switching. All runs use the replay-queue pipeline (the paper's UC
 * baseline already supports preemptible faults).
 *
 * Paper reference points (NVLink): sgemm +13%, stencil +7%, histo
 * +11%; mri-gridding degrades to ~0.85x from load imbalance; geomean
 * ~1.0 overall.
 */

#include "bench_util.hpp"

using namespace gex;

namespace {

double
runCase(const bench::TracedWorkload &tw, const vm::HostLinkConfig &link,
        bool switching, bool ideal)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    cfg.hostLink = link;
    cfg.blockSwitching = switching;
    cfg.idealContextSwitch = ideal;
    return static_cast<double>(
        bench::runConfig(tw, cfg, vm::VmPolicy::demandPaging()).cycles);
}

} // namespace

int
main()
{
    std::printf("=== Figure 12: thread block switching on fault, speedup "
                "over no-switching demand paging ===\n");
    bench::printHeader({"nvlink", "nvlink-ideal", "pcie", "pcie-ideal"});

    // Grids must oversubscribe the GPU for block switching to have
    // pending blocks to run (paper section 4.1); the per-benchmark
    // scales below size each grid to ~2-4x the resident capacity.
    std::map<std::string, int> scales = {
        {"sgemm", 3},  {"stencil", 4}, {"histo", 3},  {"lbm", 2},
        {"mri-gridding", 3}, {"mri-q", 6}, {"sad", 4}, {"spmv", 3},
        {"bfs", 4},    {"cutcp", 6},   {"tpacf", 4}};
    std::vector<std::vector<double>> cols(4);
    for (const auto &name : workloads::parboilSuite()) {
        bench::TracedWorkload tw =
            bench::buildTraced(name, scales.at(name));
        std::vector<double> row;
        const vm::HostLinkConfig links[] = {vm::HostLinkConfig::nvlink(),
                                            vm::HostLinkConfig::pcie()};
        for (const auto &link : links) {
            double base = runCase(tw, link, false, false);
            double sw = runCase(tw, link, true, false);
            double ideal = runCase(tw, link, true, true);
            row.push_back(base / sw);
            row.push_back(base / ideal);
        }
        for (size_t i = 0; i < 4; ++i)
            cols[i].push_back(row[i]);
        bench::printRow(name, row);
    }
    bench::printGeomean(cols);
    std::printf("\npaper (NVLink, normal): sgemm 1.13, stencil 1.07, "
                "histo 1.11, mri-gridding 0.85, geomean ~1.0\n");
    return 0;
}
