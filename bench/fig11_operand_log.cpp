/**
 * @file
 * Figure 11 reproduction: operand-log pipeline performance for log
 * sizes 8/16/20/32 KB, normalized to the baseline stall-on-fault SM,
 * fault-free runs (higher is better).
 *
 * Paper reference points: geomean ~0.966 at 8 KB, ~0.992 at 16 KB; the
 * log is most effective on lbm (from 0.60 under replay-queue to ~0.97).
 */

#include "bench_util.hpp"

using namespace gex;

int
main()
{
    std::printf("=== Figure 11: operand log size sweep, normalized to "
                "baseline (fault-free) ===\n");
    bench::printHeader({"baseline", "8KB", "16KB", "20KB", "32KB"});

    const std::uint32_t sizes[] = {8, 16, 20, 32};
    std::vector<std::vector<double>> cols(4);
    for (const auto &name : workloads::parboilSuite()) {
        bench::TracedWorkload tw = bench::buildTraced(name);
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        double base =
            static_cast<double>(bench::runConfig(tw, cfg).cycles);
        std::printf("%-14s %10.0f", name.c_str(), base);
        cfg.scheme = gpu::Scheme::OperandLog;
        for (int i = 0; i < 4; ++i) {
            cfg.operandLogBytes = sizes[i] * 1024;
            double c =
                static_cast<double>(bench::runConfig(tw, cfg).cycles);
            std::printf(" %10.3f", base / c);
            cols[static_cast<size_t>(i)].push_back(base / c);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-14s %10s", "GEOMEAN", "");
    for (const auto &col : cols)
        std::printf(" %10.3f", geomean(col));
    std::printf("\n\npaper: geomean 0.966 at 8KB, 0.992 at 16KB\n");
    return 0;
}
