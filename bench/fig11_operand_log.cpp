/**
 * @file
 * Figure 11 reproduction: operand-log pipeline performance for log
 * sizes 8/16/20/32 KB, normalized to the baseline stall-on-fault SM,
 * fault-free runs (higher is better).
 *
 * Runs on the parallel sweep engine: --jobs N spreads the grid over N
 * worker threads (bit-identical results at any N), --json FILE exports
 * every run's stats (schema: docs/METRICS.md).
 *
 * Paper reference points: geomean ~0.966 at 8 KB, ~0.992 at 16 KB; the
 * log is most effective on lbm (from 0.60 under replay-queue to ~0.97).
 */

#include "bench_util.hpp"

using namespace gex;

static int
toolMain(int argc, char **argv)
{
    bench::SweepOptions opt =
        bench::parseSweepArgs(argc, argv, "fig11_operand_log");

    const std::uint32_t sizes[] = {8, 16, 20, 32};
    const std::size_t nSeries = 1 + std::size(sizes);

    harness::SweepEngine eng(opt.jobs);
    for (const auto &name : workloads::parboilSuite()) {
        harness::RunSpec base;
        base.workload = name;
        base.cfg = gpu::GpuConfig::baseline();
        eng.add(base);
        for (std::uint32_t kb : sizes) {
            harness::RunSpec rs;
            rs.workload = name;
            rs.cfg = gpu::GpuConfig::baseline();
            rs.cfg.scheme = gpu::Scheme::OperandLog;
            rs.cfg.operandLogBytes = kb * 1024;
            rs.series = std::to_string(kb) + "KB";
            eng.add(std::move(rs));
        }
    }

    std::printf("=== Figure 11: operand log size sweep, normalized to "
                "baseline (fault-free) ===\n");
    bench::printHeader({"baseline", "8KB", "16KB", "20KB", "32KB"});

    std::vector<harness::RunRecord> runs =
        bench::runAndReport(eng, opt, "fig11_operand_log");

    for (std::size_t i = 0; i < runs.size(); i += nSeries) {
        std::printf("%-14s %10.0f", runs[i].spec.workload.c_str(),
                    static_cast<double>(runs[i].result.cycles));
        for (std::size_t j = 1; j < nSeries; ++j)
            std::printf(" %10.3f", runs[i + j].derived.at("normalized"));
        std::printf("\n");
        std::fflush(stdout);
    }

    std::map<std::string, double> gms = harness::seriesGeomeans(runs);
    std::printf("%-14s %10s", "GEOMEAN", "");
    for (std::uint32_t kb : sizes)
        std::printf(" %10.3f", gms.at(std::to_string(kb) + "KB"));
    std::printf("\n\npaper: geomean 0.966 at 8KB, 0.992 at 16KB\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return cli::run("fig11_operand_log", [&] { return toolMain(argc, argv); });
}
