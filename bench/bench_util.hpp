/**
 * @file
 * Shared helpers for the figure/table reproduction benches: traced
 * workloads (now provided by the harness layer, see src/harness), a
 * common --jobs/--json command line, and paper-style table printing.
 */

#ifndef GEX_BENCH_BENCH_UTIL_HPP
#define GEX_BENCH_BENCH_UTIL_HPP

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gex.hpp"

namespace gex::bench {

/** A workload plus its one-time functional trace. */
using TracedWorkload = harness::TracedWorkload;

inline TracedWorkload
buildTraced(const std::string &name, int scale = 1)
{
    return harness::buildTraced(name, scale);
}

inline gpu::SimResult
runConfig(const TracedWorkload &tw, const gpu::GpuConfig &cfg,
          const vm::VmPolicy &policy = vm::VmPolicy::allResident())
{
    gpu::Gpu g(cfg);
    return g.run(tw.kernel, tw.trace, policy);
}

/**
 * Common command line of the sweep-engine benches:
 * --jobs N (worker threads; 0 = all cores), --sm-threads N (per-run
 * SM-tick threads, results identical at any value) and --json FILE
 * (write the full result set as a BENCH_*.json document).
 */
struct SweepOptions {
    int jobs = 1;
    int smThreads = 1;
    std::string jsonPath;
};

inline SweepOptions
parseSweepArgs(int argc, char **argv, const char *benchName)
{
    SweepOptions o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--jobs")
            o.jobs = cli::parseIntFlag("--jobs", next(), 0, 4096);
        else if (a == "--sm-threads")
            o.smThreads =
                cli::parseIntFlag("--sm-threads", next(), 1, 4096);
        else if (a == "--json") o.jsonPath = next();
        else if (a == "--help" || a == "-h") {
            std::printf("%s [--jobs N] [--sm-threads N] [--json FILE]\n",
                        benchName);
            std::exit(0);
        } else {
            fatal("unknown flag '%s' (accepted: --jobs N, "
                  "--sm-threads N, --json FILE)",
                  a.c_str());
        }
    }
    return o;
}

/**
 * Time eng.run() and, when --json was given, save a SweepReport with
 * the bench's name, per-run derived metrics and geomean summary.
 * Returns the finished records in add() order. Each entry of
 * @p normalizeTo names a base series; groups containing it get
 * derived["normalized"] = base.cycles / run.cycles. The report's
 * resolved_config manifest records @p base — the machine the bench
 * built its grid from (the swept axes live in the run rows).
 */
inline std::vector<harness::RunRecord>
runAndReport(harness::SweepEngine &eng, const SweepOptions &opt,
             const std::string &benchName,
             const std::vector<std::string> &normalizeTo = {"baseline"},
             const config::RunParams &base = config::RunParams::baseline())
{
    auto t0 = std::chrono::steady_clock::now();
    std::vector<harness::RunRecord> runs = eng.run();
    auto t1 = std::chrono::steady_clock::now();

    for (const std::string &base : normalizeTo)
        harness::normalizeToSeries(runs, base);

    if (!opt.jsonPath.empty()) {
        harness::SweepReport rep;
        rep.name = benchName;
        rep.jobs = eng.jobs();
        rep.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
        rep.baseConfig = base;
        rep.runs = runs;
        rep.geomeans = harness::seriesGeomeans(runs);
        rep.saveJson(opt.jsonPath);
        std::printf("[wrote %s]\n", opt.jsonPath.c_str());
    }
    return runs;
}

/** Print a header row: name column plus the given series labels. */
inline void
printHeader(const std::vector<std::string> &series)
{
    std::printf("%-14s", "benchmark");
    for (const auto &s : series)
        std::printf(" %10s", s.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &values,
         const char *fmt = " %10.3f")
{
    std::printf("%-14s", name.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
    std::fflush(stdout);
}

/** Print the geometric-mean row over per-series value columns. */
inline void
printGeomean(const std::vector<std::vector<double>> &columns)
{
    std::printf("%-14s", "GEOMEAN");
    for (const auto &col : columns)
        std::printf(" %10.3f", geomean(col));
    std::printf("\n");
}

} // namespace gex::bench

#endif // GEX_BENCH_BENCH_UTIL_HPP
