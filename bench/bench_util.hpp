/**
 * @file
 * Shared helpers for the figure/table reproduction benches: build a
 * workload, trace it once, run it under multiple configurations and
 * print paper-style rows.
 */

#ifndef GEX_BENCH_BENCH_UTIL_HPP
#define GEX_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gex.hpp"

namespace gex::bench {

/** A workload plus its one-time functional trace. */
struct TracedWorkload {
    std::string name;
    std::unique_ptr<func::GlobalMemory> mem;
    func::Kernel kernel;
    trace::KernelTrace trace;
};

inline TracedWorkload
buildTraced(const std::string &name, int scale = 1)
{
    TracedWorkload tw;
    tw.name = name;
    tw.mem = std::make_unique<func::GlobalMemory>();
    auto w = workloads::make(name, *tw.mem, scale);
    tw.kernel = std::move(w.kernel);
    func::FunctionalSim fsim(*tw.mem);
    tw.trace = fsim.run(tw.kernel);
    return tw;
}

inline gpu::SimResult
runConfig(const TracedWorkload &tw, const gpu::GpuConfig &cfg,
          const vm::VmPolicy &policy = vm::VmPolicy::allResident())
{
    gpu::Gpu g(cfg);
    return g.run(tw.kernel, tw.trace, policy);
}

/** Print a header row: name column plus the given series labels. */
inline void
printHeader(const std::vector<std::string> &series)
{
    std::printf("%-14s", "benchmark");
    for (const auto &s : series)
        std::printf(" %10s", s.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &values,
         const char *fmt = " %10.3f")
{
    std::printf("%-14s", name.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
    std::fflush(stdout);
}

/** Print the geometric-mean row over per-series value columns. */
inline void
printGeomean(const std::vector<std::vector<double>> &columns)
{
    std::printf("%-14s", "GEOMEAN");
    for (const auto &col : columns)
        std::printf(" %10.3f", geomean(col));
    std::printf("\n");
}

} // namespace gex::bench

#endif // GEX_BENCH_BENCH_UTIL_HPP
