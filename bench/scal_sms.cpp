/**
 * @file
 * Scalability study (paper section 5.5): how the scheme costs and the
 * two use cases move with the number of SMs (8/16/32). The paper's
 * observations: scheme gaps widen when occupancy drops relative to the
 * machine; more SMs means more concurrent faults, which hurts
 * CPU-handled paging and helps GPU-local handling.
 */

#include "bench_util.hpp"

using namespace gex;

int
main()
{
    const int sms[] = {8, 16, 32};
    const std::vector<std::string> picks = {"lbm", "sgemm", "histo"};

    std::printf("=== Scalability: scheme cost vs number of SMs "
                "(fault-free, baseline/replay-queue) ===\n");
    std::printf("%-14s %8s %12s %12s\n", "benchmark", "SMs", "base cyc",
                "rq rel");
    for (const auto &name : picks) {
        bench::TracedWorkload tw = bench::buildTraced(name);
        for (int n : sms) {
            gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
            cfg.numSms = n;
            double base =
                static_cast<double>(bench::runConfig(tw, cfg).cycles);
            cfg.scheme = gpu::Scheme::ReplayQueue;
            double rq =
                static_cast<double>(bench::runConfig(tw, cfg).cycles);
            std::printf("%-14s %8d %12.0f %12.3f\n", name.c_str(), n,
                        base, base / rq);
            std::fflush(stdout);
        }
    }

    std::printf("\n=== Scalability: UC2 local handling speedup vs "
                "number of SMs (device-malloc faults, weak scaling) "
                "===\n");
    std::printf("%-14s %8s %12s\n", "benchmark", "SMs", "speedup");
    for (const auto &name : {std::string("ha-prob"),
                             std::string("quad-tree")}) {
        for (int n : sms) {
            // Weak scaling: constant per-SM work, so the aggregate
            // fault rate grows with the machine (the paper's point:
            // more SMs -> more concurrent faults -> more CPU/link
            // contention for the baseline to suffer).
            bench::TracedWorkload tw =
                bench::buildTraced(name, std::max(1, n / 8));
            gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
            cfg.numSms = n;
            cfg.scheme = gpu::Scheme::ReplayQueue;
            double cpu = static_cast<double>(
                bench::runConfig(tw, cfg, vm::VmPolicy::heapFaults(false))
                    .cycles);
            double gpu = static_cast<double>(
                bench::runConfig(tw, cfg, vm::VmPolicy::heapFaults(true))
                    .cycles);
            std::printf("%-14s %8d %12.3f\n", name.c_str(), n, cpu / gpu);
            std::fflush(stdout);
        }
    }
    std::printf("\npaper section 5.5: local-handling benefit grows with "
                "SM count (more concurrent faults).\n");
    return 0;
}
