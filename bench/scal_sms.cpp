/**
 * @file
 * Scalability study (paper section 5.5): how the scheme costs and the
 * two use cases move with the number of SMs (8/16/32), now run through
 * the parallel sweep engine with JSON export, plus a wall-clock
 * section measuring the phased SM tick engine (GpuConfig::smThreads)
 * against the serial driver at 1/4/8/16 SMs. The paper's
 * observations: scheme gaps widen when occupancy drops relative to the
 * machine; more SMs means more concurrent faults, which hurts
 * CPU-handled paging and helps GPU-local handling.
 *
 *     gexsim-scal-sms [--jobs N] [--sm-threads N] [--json FILE]
 *
 * --jobs parallelizes across grid points, --sm-threads sets the
 * parallel-engine thread count of the wall-clock section (simulated
 * results are bit-identical either way; only wall time moves).
 */

#include <chrono>
#include <fstream>
#include <thread>

#include "bench_util.hpp"

using namespace gex;

namespace {

using Clock = std::chrono::steady_clock;

const int kSchemeSms[] = {8, 16, 32};
const int kScalingSms[] = {1, 4, 8, 16};

/** One row of the serial-vs-parallel wall-clock comparison. */
struct ScalingRow {
    int sms = 0;
    std::uint64_t cycles = 0;
    double serialWall = 0;
    double parallelWall = 0;
};

double
wallOf(const bench::TracedWorkload &tw, const gpu::GpuConfig &cfg,
       std::uint64_t &cycles_out)
{
    auto t0 = Clock::now();
    gpu::SimResult r = bench::runConfig(tw, cfg);
    auto t1 = Clock::now();
    cycles_out = r.cycles;
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

static int
toolMain(int argc, char **argv)
{
    bench::SweepOptions opt =
        bench::parseSweepArgs(argc, argv, "gexsim-scal-sms");
    const int smThreads = opt.smThreads > 1 ? opt.smThreads : 4;

    // --- grid 1: scheme cost vs SM count (fault-free) -------------------
    const std::vector<std::string> picks = {"lbm", "sgemm", "histo"};
    harness::SweepEngine eng(opt.jobs);
    for (const auto &name : picks) {
        for (int n : kSchemeSms) {
            for (gpu::Scheme s :
                 {gpu::Scheme::StallOnFault, gpu::Scheme::ReplayQueue}) {
                harness::RunSpec rs;
                rs.workload = name;
                rs.cfg = gpu::GpuConfig::baseline();
                rs.cfg.numSms = n;
                rs.cfg.scheme = s;
                rs.group = name + "@" + std::to_string(n);
                eng.add(std::move(rs));
            }
        }
    }
    // --- grid 2: UC2 local-handling speedup, weak scaling ---------------
    // Constant per-SM work, so the aggregate fault rate grows with the
    // machine (the paper's point: more SMs -> more concurrent faults
    // -> more CPU/link contention for the baseline to suffer).
    for (const auto &name : {std::string("ha-prob"),
                             std::string("quad-tree")}) {
        for (int n : kSchemeSms) {
            for (bool local : {false, true}) {
                harness::RunSpec rs;
                rs.workload = name;
                rs.scale = std::max(1, n / 8);
                rs.cfg = gpu::GpuConfig::baseline();
                rs.cfg.numSms = n;
                rs.cfg.scheme = gpu::Scheme::ReplayQueue;
                rs.policy = vm::VmPolicy::heapFaults(local);
                rs.group = name + "@" + std::to_string(n);
                rs.series = local ? "uc2-local" : "uc2-cpu";
                eng.add(std::move(rs));
            }
        }
    }

    auto t0 = Clock::now();
    std::vector<harness::RunRecord> runs = eng.run();
    auto t1 = Clock::now();
    double sweepWall = std::chrono::duration<double>(t1 - t0).count();
    harness::normalizeToSeries(runs, "baseline");
    harness::normalizeToSeries(runs, "uc2-cpu");

    std::printf("=== Scalability: scheme cost vs number of SMs "
                "(fault-free, baseline/replay-queue) ===\n");
    std::printf("%-14s %8s %12s %12s\n", "benchmark", "SMs", "base cyc",
                "rq rel");
    for (const harness::RunRecord &r : runs) {
        if (r.spec.seriesLabel() != "replay-queue")
            continue;
        std::printf("%-14s %8d %12.0f %12.3f\n",
                    r.spec.workload.c_str(), r.spec.cfg.numSms,
                    static_cast<double>(r.result.cycles) *
                        (r.derived.count("normalized")
                             ? r.derived.at("normalized")
                             : 0.0),
                    r.derived.count("normalized")
                        ? r.derived.at("normalized")
                        : 0.0);
    }

    std::printf("\n=== Scalability: UC2 local handling speedup vs "
                "number of SMs (device-malloc faults, weak scaling) "
                "===\n");
    std::printf("%-14s %8s %12s\n", "benchmark", "SMs", "speedup");
    for (const harness::RunRecord &r : runs) {
        if (r.spec.seriesLabel() != "uc2-local")
            continue;
        std::printf("%-14s %8d %12.3f\n", r.spec.workload.c_str(),
                    r.spec.cfg.numSms,
                    r.derived.count("normalized")
                        ? r.derived.at("normalized")
                        : 0.0);
    }

    // --- wall clock: serial vs phased-parallel tick engine --------------
    std::printf("\n=== Wall clock: serial vs parallel tick engine "
                "(lbm, baseline scheme, sm-threads=%d, %u host cpus) "
                "===\n",
                smThreads, std::thread::hardware_concurrency());
    std::printf("%8s %12s %12s %12s %10s\n", "SMs", "cycles",
                "serial s", "parallel s", "speedup");
    std::vector<ScalingRow> scaling;
    const bench::TracedWorkload &lbm = eng.traces().get("lbm");
    for (int n : kScalingSms) {
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.numSms = n;
        ScalingRow row;
        row.sms = n;
        row.serialWall = wallOf(lbm, cfg, row.cycles);
        cfg.smThreads = smThreads;
        std::uint64_t par_cycles = 0;
        row.parallelWall = wallOf(lbm, cfg, par_cycles);
        if (par_cycles != row.cycles)
            fatal("parallel tick diverged at %d SMs: %llu != %llu", n,
                  static_cast<unsigned long long>(par_cycles),
                  static_cast<unsigned long long>(row.cycles));
        scaling.push_back(row);
        std::printf("%8d %12llu %12.3f %12.3f %10.2fx\n", n,
                    static_cast<unsigned long long>(row.cycles),
                    row.serialWall, row.parallelWall,
                    row.parallelWall > 0
                        ? row.serialWall / row.parallelWall
                        : 0.0);
        std::fflush(stdout);
    }
    std::printf("\npaper section 5.5: local-handling benefit grows with "
                "SM count (more concurrent faults).\n");

    if (!opt.jsonPath.empty()) {
        std::ofstream os(opt.jsonPath);
        if (!os)
            fatal("cannot open '%s' for writing", opt.jsonPath.c_str());
        json::Writer w(os);
        w.beginObject();
        w.key("name").value("scal_sms");
        // The machine every grid point starts from (the swept
        // sms/scheme/policy axes are per-run fields below).
        w.key("resolved_config");
        config::KnobRegistry::instance().writeManifest(
            w, config::RunParams::baseline());
        w.key("jobs").value(eng.jobs());
        w.key("sm_threads").value(smThreads);
        w.key("host_cpus")
            .value(static_cast<std::uint64_t>(
                std::thread::hardware_concurrency()));
        w.key("wall_seconds").value(sweepWall);
        w.key("runs").beginArray();
        for (const harness::RunRecord &r : runs) {
            w.beginObject();
            w.key("workload").value(r.spec.workload);
            w.key("scale").value(r.spec.scale);
            w.key("sms").value(r.spec.cfg.numSms);
            w.key("group").value(r.spec.groupLabel());
            w.key("series").value(r.spec.seriesLabel());
            w.key("policy").value(vm::policyName(r.spec.policy));
            w.key("cycles").value(
                static_cast<std::uint64_t>(r.result.cycles));
            w.key("instructions").value(r.result.instructions);
            w.key("ipc").value(r.result.ipc());
            w.key("derived").beginObject();
            for (const auto &kv : r.derived)
                w.key(kv.first).value(kv.second);
            w.endObject();
            w.endObject();
        }
        w.endArray();
        w.key("geomeans").beginObject();
        for (const auto &kv : harness::seriesGeomeans(runs))
            w.key(kv.first).value(kv.second);
        w.endObject();
        // Serial vs phased-parallel wall time of identical
        // simulations (cycles pinned equal above).
        w.key("scaling").beginArray();
        for (const ScalingRow &row : scaling) {
            w.beginObject();
            w.key("workload").value("lbm");
            w.key("sms").value(row.sms);
            w.key("cycles").value(row.cycles);
            w.key("serial_wall_seconds").value(row.serialWall);
            w.key("parallel_wall_seconds").value(row.parallelWall);
            w.key("parallel_speedup")
                .value(row.parallelWall > 0
                           ? row.serialWall / row.parallelWall
                           : 0.0);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
        GEX_ASSERT(w.complete());
        std::printf("[wrote %s]\n", opt.jsonPath.c_str());
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return cli::run("scal_sms", [&] { return toolMain(argc, argv); });
}
