/**
 * @file
 * Figure 10 reproduction: performance of the warp-disable (both
 * variants) and replay-queue pipelines with preemptible-fault support,
 * normalized to the baseline stall-on-fault SM, on fault-free runs of
 * the Parboil-like suite (higher is better).
 *
 * Paper reference points: geomean wd-commit ~0.84, wd-lastcheck ~0.90,
 * replay-queue ~0.94; lbm is the worst case.
 */

#include "bench_util.hpp"

using namespace gex;

int
main()
{
    std::printf("=== Figure 10: preemptible-fault pipelines, normalized "
                "to baseline (fault-free) ===\n");
    bench::printHeader({"baseline", "wd-commit", "wd-lastchk", "replay-q"});

    std::vector<std::vector<double>> cols(3);
    for (const auto &name : workloads::parboilSuite()) {
        bench::TracedWorkload tw = bench::buildTraced(name);
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        double base =
            static_cast<double>(bench::runConfig(tw, cfg).cycles);
        std::vector<double> row = {base};
        gpu::Scheme schemes[] = {gpu::Scheme::WarpDisableCommit,
                                 gpu::Scheme::WarpDisableLastCheck,
                                 gpu::Scheme::ReplayQueue};
        for (int i = 0; i < 3; ++i) {
            cfg.scheme = schemes[i];
            double c =
                static_cast<double>(bench::runConfig(tw, cfg).cycles);
            row.push_back(base / c);
            cols[static_cast<size_t>(i)].push_back(base / c);
        }
        std::printf("%-14s %10.0f %10.3f %10.3f %10.3f\n", name.c_str(),
                    row[0], row[1], row[2], row[3]);
        std::fflush(stdout);
    }
    std::printf("%-14s %10s %10.3f %10.3f %10.3f\n", "GEOMEAN", "",
                geomean(cols[0]), geomean(cols[1]), geomean(cols[2]));
    std::printf("\npaper: geomean wd-commit 0.84 / wd-lastcheck 0.90 / "
                "replay-queue 0.94; lbm worst case\n");
    return 0;
}
