/**
 * @file
 * Figure 10 reproduction: performance of the warp-disable (both
 * variants) and replay-queue pipelines with preemptible-fault support,
 * normalized to the baseline stall-on-fault SM, on fault-free runs of
 * the Parboil-like suite (higher is better).
 *
 * Runs on the parallel sweep engine: --jobs N spreads the grid over N
 * worker threads (bit-identical results at any N), --json FILE exports
 * every run's stats (schema: docs/METRICS.md).
 *
 * Paper reference points: geomean wd-commit ~0.84, wd-lastcheck ~0.90,
 * replay-queue ~0.94; lbm is the worst case.
 */

#include "bench_util.hpp"

using namespace gex;

static int
toolMain(int argc, char **argv)
{
    bench::SweepOptions opt =
        bench::parseSweepArgs(argc, argv, "fig10_schemes");

    const gpu::Scheme schemes[] = {gpu::Scheme::StallOnFault,
                                   gpu::Scheme::WarpDisableCommit,
                                   gpu::Scheme::WarpDisableLastCheck,
                                   gpu::Scheme::ReplayQueue};

    harness::SweepEngine eng(opt.jobs);
    for (const auto &name : workloads::parboilSuite()) {
        for (gpu::Scheme s : schemes) {
            harness::RunSpec rs;
            rs.workload = name;
            rs.cfg = gpu::GpuConfig::baseline();
            rs.cfg.scheme = s;
            eng.add(std::move(rs));
        }
    }

    std::printf("=== Figure 10: preemptible-fault pipelines, normalized "
                "to baseline (fault-free) ===\n");
    bench::printHeader({"baseline", "wd-commit", "wd-lastchk", "replay-q"});

    std::vector<harness::RunRecord> runs =
        bench::runAndReport(eng, opt, "fig10_schemes");

    const std::size_t nSchemes = std::size(schemes);
    for (std::size_t i = 0; i < runs.size(); i += nSchemes) {
        std::printf("%-14s %10.0f", runs[i].spec.workload.c_str(),
                    static_cast<double>(runs[i].result.cycles));
        for (std::size_t j = 1; j < nSchemes; ++j)
            std::printf(" %10.3f", runs[i + j].derived.at("normalized"));
        std::printf("\n");
        std::fflush(stdout);
    }

    std::map<std::string, double> gms = harness::seriesGeomeans(runs);
    std::printf("%-14s %10s %10.3f %10.3f %10.3f\n", "GEOMEAN", "",
                gms.at("wd-commit"), gms.at("wd-lastcheck"),
                gms.at("replay-queue"));
    std::printf("\npaper: geomean wd-commit 0.84 / wd-lastcheck 0.90 / "
                "replay-queue 0.94; lbm worst case\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return cli::run("fig10_schemes", [&] { return toolMain(argc, argv); });
}
