/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. UC1 local-scheduler switch threshold (wasteful vs missed
 *     switches, paper section 4.1);
 *  2. UC1 extra off-chip block budget (the paper fixes 4);
 *  3. UC2 GPU handler latency (the paper measures 20 us);
 *  4. the memory-pipeline front-end depth behind the "last TLB check"
 *     (drives the wd-lastcheck / replay-queue costs);
 *  5. GPU-allocator serialization in the UC2 handler (the paper's
 *     lock-free design vs a serialized allocator).
 */

#include "bench_util.hpp"

using namespace gex;

int
main()
{
    // --- 1 & 2: UC1 scheduler knobs on an oversubscribed workload ---
    {
        bench::TracedWorkload tw = bench::buildTraced("sgemm", 3);
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = gpu::Scheme::ReplayQueue;
        double base = static_cast<double>(
            bench::runConfig(tw, cfg, vm::VmPolicy::demandPaging())
                .cycles);

        std::printf("=== UC1 ablation: switch queue-depth threshold "
                    "(sgemm, NVLink) ===\n");
        std::printf("%10s %12s %12s\n", "threshold", "speedup",
                    "switch-outs");
        for (int th : {0, 1, 2, 4, 8, 32}) {
            gpu::GpuConfig c = cfg;
            c.blockSwitching = true;
            c.switchQueueThreshold = th;
            auto r = bench::runConfig(tw, c, vm::VmPolicy::demandPaging());
            std::printf("%10d %12.3f %12.0f\n", th,
                        base / static_cast<double>(r.cycles),
                        r.stats.get("sm.switch_outs"));
            std::fflush(stdout);
        }

        std::printf("\n=== UC1 ablation: extra off-chip block budget "
                    "===\n");
        std::printf("%10s %12s %12s\n", "budget", "speedup",
                    "switch-outs");
        for (int extra : {0, 1, 2, 4, 8}) {
            gpu::GpuConfig c = cfg;
            c.blockSwitching = true;
            c.maxExtraBlocks = extra;
            auto r = bench::runConfig(tw, c, vm::VmPolicy::demandPaging());
            std::printf("%10d %12.3f %12.0f\n", extra,
                        base / static_cast<double>(r.cycles),
                        r.stats.get("sm.switch_outs"));
            std::fflush(stdout);
        }
    }

    // --- 3 & 5: UC2 handler latency and allocator serialization -----
    {
        bench::TracedWorkload tw = bench::buildTraced("ha-prob");
        gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
        cfg.scheme = gpu::Scheme::ReplayQueue;
        double cpu = static_cast<double>(
            bench::runConfig(tw, cfg, vm::VmPolicy::heapFaults(false))
                .cycles);

        std::printf("\n=== UC2 ablation: GPU handler latency (ha-prob, "
                    "speedup over CPU handling) ===\n");
        std::printf("%12s %12s\n", "handler us", "speedup");
        for (Cycle us : {5, 10, 20, 40, 80}) {
            gpu::GpuConfig c = cfg;
            c.gpuHandler.handlerCycles = us * 1000;
            auto r = bench::runConfig(tw, c, vm::VmPolicy::heapFaults(true));
            std::printf("%12llu %12.3f\n",
                        static_cast<unsigned long long>(us),
                        cpu / static_cast<double>(r.cycles));
            std::fflush(stdout);
        }

        std::printf("\n=== UC2 ablation: allocator serialization "
                    "(paper: lock-free => 0) ===\n");
        std::printf("%14s %12s\n", "serial cycles", "speedup");
        for (Cycle ser : {0, 500, 2000, 8000}) {
            gpu::GpuConfig c = cfg;
            c.gpuHandler.allocatorSerialCycles = ser;
            auto r = bench::runConfig(tw, c, vm::VmPolicy::heapFaults(true));
            std::printf("%14llu %12.3f\n",
                        static_cast<unsigned long long>(ser),
                        cpu / static_cast<double>(r.cycles));
            std::fflush(stdout);
        }
    }

    // --- 4: memory front-end depth vs scheme costs ------------------
    {
        bench::TracedWorkload tw = bench::buildTraced("lbm");
        std::printf("\n=== Pipeline ablation: memory front-end depth "
                    "(lbm, relative to stall-on-fault) ===\n");
        std::printf("%10s %12s %12s\n", "frontend", "wd-lastchk",
                    "replay-q");
        for (Cycle fe : {4, 8, 16, 32, 64}) {
            gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
            cfg.sm.memFrontendCycles = fe;
            double base =
                static_cast<double>(bench::runConfig(tw, cfg).cycles);
            cfg.scheme = gpu::Scheme::WarpDisableLastCheck;
            double wdl =
                static_cast<double>(bench::runConfig(tw, cfg).cycles);
            cfg.scheme = gpu::Scheme::ReplayQueue;
            double rq =
                static_cast<double>(bench::runConfig(tw, cfg).cycles);
            std::printf("%10llu %12.3f %12.3f\n",
                        static_cast<unsigned long long>(fe), base / wdl,
                        base / rq);
            std::fflush(stdout);
        }
    }
    return 0;
}
