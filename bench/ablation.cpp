/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. UC1 local-scheduler switch threshold (wasteful vs missed
 *     switches, paper section 4.1);
 *  2. UC1 extra off-chip block budget (the paper fixes 4);
 *  3. UC2 GPU handler latency (the paper measures 20 us);
 *  4. the memory-pipeline front-end depth behind the "last TLB check"
 *     (drives the wd-lastcheck / replay-queue costs);
 *  5. GPU-allocator serialization in the UC2 handler (the paper's
 *     lock-free design vs a serialized allocator).
 *
 * All five grids are queued into one parallel sweep: --jobs N spreads
 * the runs over N worker threads (bit-identical results at any N),
 * --json FILE exports every run's stats (schema: docs/METRICS.md).
 */

#include "bench_util.hpp"

using namespace gex;

namespace {

/** Indexed handles into the one shared sweep. */
struct Grid {
    std::vector<std::size_t> idx;
    std::vector<long long> knobs;
};

double
speedup(const harness::RunRecord &r)
{
    return r.derived.at("normalized");
}

} // namespace

static int
toolMain(int argc, char **argv)
{
    bench::SweepOptions opt = bench::parseSweepArgs(argc, argv, "ablation");
    harness::SweepEngine eng(opt.jobs);

    // --- 1 & 2: UC1 scheduler knobs on an oversubscribed workload ---
    gpu::GpuConfig rq = gpu::GpuConfig::baseline();
    rq.scheme = gpu::Scheme::ReplayQueue;

    {
        harness::RunSpec base;
        base.workload = "sgemm";
        base.scale = 3;
        base.cfg = rq;
        base.policy = vm::VmPolicy::demandPaging();
        base.group = "uc1";
        base.series = "no-switching";
        eng.add(base);
    }
    Grid thresholds, budgets;
    thresholds.knobs = {0, 1, 2, 4, 8, 32};
    for (long long th : thresholds.knobs) {
        harness::RunSpec rs;
        rs.workload = "sgemm";
        rs.scale = 3;
        rs.cfg = rq;
        rs.cfg.blockSwitching = true;
        rs.cfg.switchQueueThreshold = static_cast<int>(th);
        rs.policy = vm::VmPolicy::demandPaging();
        rs.group = "uc1";
        rs.series = "threshold-" + std::to_string(th);
        thresholds.idx.push_back(eng.add(std::move(rs)));
    }
    budgets.knobs = {0, 1, 2, 4, 8};
    for (long long extra : budgets.knobs) {
        harness::RunSpec rs;
        rs.workload = "sgemm";
        rs.scale = 3;
        rs.cfg = rq;
        rs.cfg.blockSwitching = true;
        rs.cfg.maxExtraBlocks = static_cast<int>(extra);
        rs.policy = vm::VmPolicy::demandPaging();
        rs.group = "uc1";
        rs.series = "budget-" + std::to_string(extra);
        budgets.idx.push_back(eng.add(std::move(rs)));
    }

    // --- 3 & 5: UC2 handler latency and allocator serialization -----
    {
        harness::RunSpec cpu;
        cpu.workload = "ha-prob";
        cpu.cfg = rq;
        cpu.policy = vm::VmPolicy::heapFaults(false);
        cpu.group = "uc2";
        cpu.series = "cpu-handling";
        eng.add(std::move(cpu));
    }
    Grid latencies, serials;
    latencies.knobs = {5, 10, 20, 40, 80};
    for (long long us : latencies.knobs) {
        harness::RunSpec rs;
        rs.workload = "ha-prob";
        rs.cfg = rq;
        rs.cfg.gpuHandler.handlerCycles = static_cast<Cycle>(us) * 1000;
        rs.policy = vm::VmPolicy::heapFaults(true);
        rs.group = "uc2";
        rs.series = "handler-" + std::to_string(us) + "us";
        latencies.idx.push_back(eng.add(std::move(rs)));
    }
    serials.knobs = {0, 500, 2000, 8000};
    for (long long ser : serials.knobs) {
        harness::RunSpec rs;
        rs.workload = "ha-prob";
        rs.cfg = rq;
        rs.cfg.gpuHandler.allocatorSerialCycles = static_cast<Cycle>(ser);
        rs.policy = vm::VmPolicy::heapFaults(true);
        rs.group = "uc2";
        rs.series = "serial-" + std::to_string(ser);
        serials.idx.push_back(eng.add(std::move(rs)));
    }

    // --- 4: memory front-end depth vs scheme costs ------------------
    const long long frontends[] = {4, 8, 16, 32, 64};
    Grid feWdl, feRq;
    for (long long fe : frontends) {
        const std::string group = "frontend-" + std::to_string(fe);
        harness::RunSpec base;
        base.workload = "lbm";
        base.cfg = gpu::GpuConfig::baseline();
        base.cfg.sm.memFrontendCycles = static_cast<Cycle>(fe);
        base.group = group;
        base.series = "baseline";
        eng.add(base);

        harness::RunSpec wdl = base;
        wdl.cfg.scheme = gpu::Scheme::WarpDisableLastCheck;
        wdl.series = "wd-lastcheck";
        feWdl.idx.push_back(eng.add(std::move(wdl)));

        harness::RunSpec rqs = base;
        rqs.cfg.scheme = gpu::Scheme::ReplayQueue;
        rqs.series = "replay-queue";
        feRq.idx.push_back(eng.add(std::move(rqs)));
    }

    std::vector<harness::RunRecord> runs = bench::runAndReport(
        eng, opt, "ablation",
        {"no-switching", "cpu-handling", "baseline"});

    // --- print the paper-style tables -------------------------------
    std::printf("=== UC1 ablation: switch queue-depth threshold "
                "(sgemm, NVLink) ===\n");
    std::printf("%10s %12s %12s\n", "threshold", "speedup", "switch-outs");
    for (std::size_t i = 0; i < thresholds.idx.size(); ++i) {
        const auto &r = runs[thresholds.idx[i]];
        std::printf("%10lld %12.3f %12.0f\n", thresholds.knobs[i],
                    speedup(r), r.result.stats.get("sm.switch_outs"));
    }

    std::printf("\n=== UC1 ablation: extra off-chip block budget ===\n");
    std::printf("%10s %12s %12s\n", "budget", "speedup", "switch-outs");
    for (std::size_t i = 0; i < budgets.idx.size(); ++i) {
        const auto &r = runs[budgets.idx[i]];
        std::printf("%10lld %12.3f %12.0f\n", budgets.knobs[i],
                    speedup(r), r.result.stats.get("sm.switch_outs"));
    }

    std::printf("\n=== UC2 ablation: GPU handler latency (ha-prob, "
                "speedup over CPU handling) ===\n");
    std::printf("%12s %12s\n", "handler us", "speedup");
    for (std::size_t i = 0; i < latencies.idx.size(); ++i)
        std::printf("%12lld %12.3f\n", latencies.knobs[i],
                    speedup(runs[latencies.idx[i]]));

    std::printf("\n=== UC2 ablation: allocator serialization "
                "(paper: lock-free => 0) ===\n");
    std::printf("%14s %12s\n", "serial cycles", "speedup");
    for (std::size_t i = 0; i < serials.idx.size(); ++i)
        std::printf("%14lld %12.3f\n", serials.knobs[i],
                    speedup(runs[serials.idx[i]]));

    std::printf("\n=== Pipeline ablation: memory front-end depth "
                "(lbm, relative to stall-on-fault) ===\n");
    std::printf("%10s %12s %12s\n", "frontend", "wd-lastchk", "replay-q");
    for (std::size_t i = 0; i < feWdl.idx.size(); ++i)
        std::printf("%10lld %12.3f %12.3f\n", frontends[i],
                    speedup(runs[feWdl.idx[i]]),
                    speedup(runs[feRq.idx[i]]));
    return 0;
}

int
main(int argc, char **argv)
{
    return cli::run("ablation", [&] { return toolMain(argc, argv); });
}
