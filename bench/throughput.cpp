/**
 * @file
 * Self-measuring simulator-throughput harness (gexsim-throughput):
 * runs a fixed grid of timing simulations, serially, through the
 * parallel sweep engine, and serially again with the intra-run phased
 * SM tick engine (GpuConfig::smThreads), and reports simulated
 * kcycles per wall second against the recorded pre-optimization
 * baseline. This is the
 * regression gate for hot-path work on the timing loop: the simulated
 * results themselves are pinned bit-identical by the golden-stats
 * test, so the only thing allowed to move here is wall time.
 *
 *     gexsim-throughput [--quick] [--jobs N] [--sm-threads N]
 *                       [--json FILE]
 *
 * --quick runs a 5-point subset (CI smoke; no baseline comparison),
 * --jobs N sets sweep-engine workers (0 = all cores), --sm-threads N
 * sets the per-run SM-tick thread count of the parallel phase
 * (default 4; simulated results are bit-identical at any value),
 * --json FILE writes the measurements as one BENCH_throughput.json
 * document.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "gex.hpp"

using namespace gex;

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Serial-mode throughput of the standard grid measured on this
 * codebase immediately before the flat-container / scan-gating
 * overhaul (RelWithDebInfo -O2, single thread, traces pre-built).
 * Update only when intentionally re-baselining.
 */
constexpr double kBaselineKcyclesPerSec = 150.18;

struct Point {
    const char *workload;
    const char *scheme;
    bool demandPaging;
};

/**
 * The standard grid: six workloads under the three heavyweight
 * exception schemes with everything resident, plus two demand-paging
 * points so the fault/TLB/page-walk paths contribute. Identical to
 * the grid the baseline constant was recorded on.
 */
const Point kStandardGrid[] = {
    {"bfs", "baseline", false},      {"bfs", "replay-queue", false},
    {"bfs", "operand-log", false},   {"sgemm", "baseline", false},
    {"sgemm", "replay-queue", false},{"sgemm", "operand-log", false},
    {"lbm", "baseline", false},      {"lbm", "replay-queue", false},
    {"lbm", "operand-log", false},   {"histo", "baseline", false},
    {"histo", "replay-queue", false},{"histo", "operand-log", false},
    {"sad", "baseline", false},      {"sad", "replay-queue", false},
    {"sad", "operand-log", false},   {"stencil", "baseline", false},
    {"stencil", "replay-queue", false}, {"stencil", "operand-log", false},
    {"bfs", "replay-queue", true},   {"stencil", "replay-queue", true},
};

/** CI smoke subset: one workload across schemes plus one paging point. */
const Point kQuickGrid[] = {
    {"bfs", "baseline", false},
    {"bfs", "replay-queue", false},
    {"bfs", "operand-log", false},
    {"sgemm", "baseline", false},
    {"bfs", "replay-queue", true},
};

struct PointResult {
    const Point *pt;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double wallSeconds = 0;
};

struct PhaseTotals {
    double wallSeconds = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    double kcyclesPerSec() const
    {
        return wallSeconds > 0 ? cycles / wallSeconds / 1e3 : 0;
    }
    double instsPerSec() const
    {
        return wallSeconds > 0 ? instructions / wallSeconds : 0;
    }
};

gpu::GpuConfig
configFor(const Point &pt, int sm_threads = 1)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::schemeFromName(pt.scheme);
    cfg.smThreads = sm_threads;
    return cfg;
}

vm::VmPolicy
policyFor(const Point &pt)
{
    return pt.demandPaging ? vm::VmPolicy::demandPaging()
                           : vm::VmPolicy::allResident();
}

/**
 * One simulation per point on this thread, each individually timed.
 * sm_threads > 1 runs each point on the phased multi-threaded tick
 * engine (same simulated results, different wall clock).
 */
std::vector<PointResult>
runSerial(harness::TraceCache &cache, const Point *grid, std::size_t n,
          PhaseTotals &totals, int sm_threads = 1)
{
    std::vector<PointResult> results;
    results.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Point &pt = grid[i];
        const harness::TracedWorkload &tw = cache.get(pt.workload);
        auto t0 = Clock::now();
        gpu::Gpu g(configFor(pt, sm_threads));
        gpu::SimResult r = g.run(tw.kernel, tw.trace, policyFor(pt));
        auto t1 = Clock::now();

        PointResult pr;
        pr.pt = &pt;
        pr.cycles = r.cycles;
        pr.instructions = r.instructions;
        pr.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
        totals.wallSeconds += pr.wallSeconds;
        totals.cycles += pr.cycles;
        totals.instructions += pr.instructions;
        results.push_back(pr);
    }
    return results;
}

/** The same grid through the sweep engine's thread pool. */
PhaseTotals
runSweep(harness::SweepEngine &eng, const Point *grid, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Point &pt = grid[i];
        harness::RunSpec rs;
        rs.workload = pt.workload;
        rs.cfg = configFor(pt);
        rs.policy = policyFor(pt);
        rs.series = std::string(pt.scheme) +
                    (pt.demandPaging ? "/paging" : "");
        eng.add(std::move(rs));
    }
    auto t0 = Clock::now();
    std::vector<harness::RunRecord> runs = eng.run();
    auto t1 = Clock::now();

    PhaseTotals totals;
    totals.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    for (const harness::RunRecord &rr : runs) {
        totals.cycles += rr.result.cycles;
        totals.instructions += rr.result.instructions;
    }
    return totals;
}

void
writePhase(json::Writer &w, const PhaseTotals &t)
{
    w.beginObject();
    w.key("wall_seconds").value(t.wallSeconds);
    w.key("kcycles_per_sec").value(t.kcyclesPerSec());
    w.key("insts_per_sec").value(t.instsPerSec());
    w.key("cycles").value(t.cycles);
    w.key("instructions").value(t.instructions);
    w.endObject();
}

void
writeJson(const std::string &path, bool quick, int jobs, int sm_threads,
          const std::vector<PointResult> &points,
          const PhaseTotals &serial, const PhaseTotals &parallel,
          const PhaseTotals &sweep)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open %s for writing", path.c_str());

    json::Writer w(os);
    w.beginObject();
    w.key("name").value("throughput");
    // The machine every grid point starts from (scheme/policy/
    // sm-threads axes are per-point, listed in "points").
    w.key("resolved_config");
    config::KnobRegistry::instance().writeManifest(
        w, config::RunParams::baseline());
    w.key("grid").value(quick ? "quick" : "standard");
    w.key("grid_points").value(static_cast<std::uint64_t>(points.size()));

    w.key("serial");
    writePhase(w, serial);
    if (!quick) {
        // The baseline was recorded on the standard grid in serial
        // mode; the quick subset has no comparable number.
        w.key("baseline_kcycles_per_sec").value(kBaselineKcyclesPerSec);
        w.key("speedup_vs_baseline")
            .value(serial.kcyclesPerSec() / kBaselineKcyclesPerSec);
    }

    w.key("parallel").beginObject();
    w.key("sm_threads").value(sm_threads);
    // Wall-clock context for the speedup number: with fewer host
    // cores than sm_threads the parallel phase cannot beat serial.
    w.key("host_cpus")
        .value(static_cast<std::uint64_t>(
            std::thread::hardware_concurrency()));
    w.key("wall_seconds").value(parallel.wallSeconds);
    w.key("kcycles_per_sec").value(parallel.kcyclesPerSec());
    w.key("insts_per_sec").value(parallel.instsPerSec());
    w.key("speedup_vs_serial")
        .value(parallel.wallSeconds > 0
                   ? serial.wallSeconds / parallel.wallSeconds
                   : 0.0);
    w.endObject();

    w.key("sweep").beginObject();
    w.key("jobs").value(jobs);
    w.key("wall_seconds").value(sweep.wallSeconds);
    w.key("kcycles_per_sec").value(sweep.kcyclesPerSec());
    w.key("insts_per_sec").value(sweep.instsPerSec());
    w.endObject();

    w.key("points").beginArray();
    for (const PointResult &pr : points) {
        w.beginObject();
        w.key("workload").value(pr.pt->workload);
        w.key("scheme").value(pr.pt->scheme);
        w.key("policy").value(pr.pt->demandPaging ? "demand-paging"
                                                  : "all-resident");
        w.key("cycles").value(pr.cycles);
        w.key("instructions").value(pr.instructions);
        w.key("wall_seconds").value(pr.wallSeconds);
        w.key("kcycles_per_sec")
            .value(pr.wallSeconds > 0
                       ? pr.cycles / pr.wallSeconds / 1e3
                       : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::printf("[wrote %s]\n", path.c_str());
}

} // namespace

static int
toolMain(int argc, char **argv)
{
    bool quick = false;
    int jobs = 0;       // sweep phase defaults to all cores
    int smThreads = 4;  // parallel phase (ISSUE acceptance point)
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("flag %s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--quick") quick = true;
        else if (a == "--jobs")
            jobs = cli::parseIntFlag("--jobs", next(), 0, 4096);
        else if (a == "--sm-threads")
            smThreads =
                cli::parseIntFlag("--sm-threads", next(), 1, 4096);
        else if (a == "--json") jsonPath = next();
        else if (a == "--help" || a == "-h") {
            std::printf("gexsim-throughput [--quick] [--jobs N] "
                        "[--sm-threads N] [--json FILE]\n");
            return 0;
        } else {
            fatal("unknown flag '%s' (accepted: --quick, --jobs N, "
                  "--sm-threads N, --json FILE)", a.c_str());
        }
    }

    const Point *grid = quick ? kQuickGrid : kStandardGrid;
    const std::size_t n = quick ? std::size(kQuickGrid)
                                : std::size(kStandardGrid);

    // Functional tracing is one-time setup, not timing-loop work;
    // build every trace before either measured phase.
    harness::SweepEngine eng(jobs);
    for (std::size_t i = 0; i < n; ++i)
        (void)eng.traces().get(grid[i].workload);

    PhaseTotals serial;
    std::vector<PointResult> points =
        runSerial(eng.traces(), grid, n, serial);
    std::printf("serial  %2zu pts  wall %7.3fs  %8.2f kcycles/s  "
                "%10.0f insts/s\n",
                n, serial.wallSeconds, serial.kcyclesPerSec(),
                serial.instsPerSec());
    if (!quick)
        std::printf("        baseline %.2f kcycles/s  ->  %.2fx\n",
                    kBaselineKcyclesPerSec,
                    serial.kcyclesPerSec() / kBaselineKcyclesPerSec);

    PhaseTotals parallel;
    runSerial(eng.traces(), grid, n, parallel, smThreads);
    std::printf("parallel%2zu pts  wall %7.3fs  %8.2f kcycles/s  "
                "%10.0f insts/s  (sm-threads=%d, %.2fx vs serial, "
                "%u host cpus)\n",
                n, parallel.wallSeconds, parallel.kcyclesPerSec(),
                parallel.instsPerSec(), smThreads,
                parallel.wallSeconds > 0
                    ? serial.wallSeconds / parallel.wallSeconds
                    : 0.0,
                std::thread::hardware_concurrency());

    PhaseTotals sweep = runSweep(eng, grid, n);
    std::printf("sweep   %2zu pts  wall %7.3fs  %8.2f kcycles/s  "
                "%10.0f insts/s  (jobs=%d)\n",
                n, sweep.wallSeconds, sweep.kcyclesPerSec(),
                sweep.instsPerSec(), eng.jobs());

    if (!jsonPath.empty())
        writeJson(jsonPath, quick, eng.jobs(), smThreads, points, serial,
                  parallel, sweep);
    return 0;
}

int
main(int argc, char **argv)
{
    return cli::run("throughput", [&] { return toolMain(argc, argv); });
}
