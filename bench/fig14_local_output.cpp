/**
 * @file
 * Figure 14 reproduction (use case 2): speedup from handling
 * first-touch faults to kernel *output* pages on the GPU instead of
 * the CPU, on the Parboil-like suite.
 *
 * Paper reference points: geomean 1.05x (NVLink) / 1.08x (PCIe) — the
 * PCIe improvement is larger because its higher per-fault cost causes
 * more interconnect contention in the CPU-handled baseline.
 */

#include "bench_util.hpp"

using namespace gex;

namespace {

double
runCase(const bench::TracedWorkload &tw, const vm::HostLinkConfig &link,
        bool local)
{
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    cfg.hostLink = link;
    return static_cast<double>(
        bench::runConfig(tw, cfg, vm::VmPolicy::outputFaults(local))
            .cycles);
}

} // namespace

int
main()
{
    std::printf("=== Figure 14: GPU-local handling of output-page "
                "faults, speedup over CPU handling ===\n");
    bench::printHeader({"nvlink", "pcie"});

    // Per-benchmark scales restore the original suite's output-region
    // concurrency (the default sizes are scaled down ~100x).
    std::map<std::string, int> scales = {
        {"lbm", 4}, {"stencil", 2}, {"mri-gridding", 2}};
    std::vector<std::vector<double>> cols(2);
    for (const auto &name : workloads::parboilSuite()) {
        int sc = scales.count(name) ? scales[name] : 1;
        bench::TracedWorkload tw = bench::buildTraced(name, sc);
        std::vector<double> row;
        const vm::HostLinkConfig links[] = {vm::HostLinkConfig::nvlink(),
                                            vm::HostLinkConfig::pcie()};
        for (const auto &link : links) {
            double cpu = runCase(tw, link, false);
            double gpu = runCase(tw, link, true);
            row.push_back(cpu / gpu);
        }
        cols[0].push_back(row[0]);
        cols[1].push_back(row[1]);
        bench::printRow(name, row);
    }
    bench::printGeomean(cols);
    std::printf("\npaper: geomean 1.05 (NVLink) / 1.08 (PCIe), PCIe > "
                "NVLink\n");
    return 0;
}
