/**
 * @file
 * Table 1 reproduction: the simulation parameters of the baseline GPU
 * (NVIDIA Kepler K20-class, 16 SMs).
 */

#include <cstdio>

#include "gex.hpp"

int
main()
{
    std::printf("=== Table 1: simulation parameters ===\n%s",
                gex::gpu::GpuConfig::baseline().describe().c_str());
    return 0;
}
