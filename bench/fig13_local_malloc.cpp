/**
 * @file
 * Figure 13 reproduction (use case 2): speedup from handling
 * first-touch faults to dynamically allocated (device-malloc) pages on
 * the GPU itself instead of interrupting the CPU, on the Halloc-like
 * suite plus the quad-tree sample. GPU handler latency is 20 us per
 * fault (paper-measured prototype) vs 2 us CPU service time — the win
 * is throughput, not latency.
 *
 * Paper reference points: geomean 1.56x (NVLink) / 1.75x (PCIe).
 */

#include "bench_util.hpp"

using namespace gex;

namespace {

double
runCase(const std::string &name, const vm::HostLinkConfig &link,
        bool local)
{
    bench::TracedWorkload tw = bench::buildTraced(name);
    gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
    cfg.scheme = gpu::Scheme::ReplayQueue;
    cfg.hostLink = link;
    return static_cast<double>(
        bench::runConfig(tw, cfg, vm::VmPolicy::heapFaults(local)).cycles);
}

} // namespace

int
main()
{
    std::printf("=== Figure 13: GPU-local handling of device-malloc "
                "faults, speedup over CPU handling ===\n");
    bench::printHeader({"nvlink", "pcie"});

    std::vector<std::vector<double>> cols(2);
    for (const auto &name : workloads::hallocSuite()) {
        std::vector<double> row;
        const vm::HostLinkConfig links[] = {vm::HostLinkConfig::nvlink(),
                                            vm::HostLinkConfig::pcie()};
        for (const auto &link : links) {
            double cpu = runCase(name, link, false);
            double gpu = runCase(name, link, true);
            row.push_back(cpu / gpu);
        }
        cols[0].push_back(row[0]);
        cols[1].push_back(row[1]);
        bench::printRow(name, row);
    }
    bench::printGeomean(cols);
    std::printf("\npaper: geomean 1.56 (NVLink) / 1.75 (PCIe)\n");
    return 0;
}
