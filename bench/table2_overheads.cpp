/**
 * @file
 * Table 2 reproduction: operand log area and power overheads relative
 * to the SM and the whole GPU, for 8/16/20/32 KB logs (CACTI-class
 * SRAM model, 40 nm, 1.5x control-logic factor, worst case of one log
 * write per cycle at 1 GHz).
 *
 * Paper reference points: 8 KB -> 1.04%/0.47%/1.82%/1.28%;
 * 16 KB -> 1.47%/0.67%/2.34%/1.64%.
 */

#include <cstdio>

#include "gex.hpp"

int
main()
{
    std::printf("=== Table 2: operand logging overheads ===\n%s",
                gex::power::formatTable2(gex::power::table2()).c_str());
    std::printf("\npaper:    8 KB |   1.04%% |    0.47%% |    1.82%% |     "
                "1.28%%\n          16 KB |   1.47%% |    0.67%% |    "
                "2.34%% |     1.64%%\n          20 KB |   1.67%% |    "
                "0.76%% |    2.61%% |     1.83%%\n          32 KB |   "
                "2.36%% |    1.08%% |    3.38%% |     2.37%%\n");
    return 0;
}
